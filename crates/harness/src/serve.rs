//! Load/soak driver for the streaming phase server (`dsm-serve`).
//!
//! A [`ServeScenario`] describes a fleet: some tenants replay real
//! workload traces (captured through [`crate::trace::capture_cached`] and
//! converted to wire [`IntervalSignature`]s), the rest run deterministic
//! synthetic phase-structured streams ([`SynthStream`]) for scale beyond
//! the trace corpus. The driver admits the fleet, pumps offers/batches/
//! drains in deterministic rounds, applies seeded FaultPlan-style
//! *service* disturbances ([`DisturbPlan`]: tenant stalls, burst arrivals,
//! slow consumers) and tenant churn (admit/evict beyond the concurrency
//! cap), and reports:
//!
//! * deterministic outcome — accounting totals, queue/backpressure
//!   high-waters, tick-based latency percentiles — into byte-stable
//!   `serve.{json,txt}` artefacts (no wall-clock inside);
//! * wall-clock throughput (classifications/sec) separately, for the
//!   `phased` bin's stderr and `BENCH_SERVE.json`.
//!
//! Everything is a pure function of the scenario: same knobs, same bytes.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dsm_phase::detector::DetectorMode;
use dsm_phase::signature::IntervalSignature;
use dsm_phase::stream::PhaseStream;
use dsm_phase::{ClassifiedInterval, Thresholds};
use dsm_serve::{Ingest, PhaseServer, ServeConfig, SynthStream, TenantConfig, TenantId};
use dsm_sim::util::splitmix64;
use dsm_workloads::App;

use crate::experiment::ExperimentConfig;
use crate::json::Json;

/// Seeded service-level disturbances, drawn per (tenant, round) exactly
/// like the simulator's fault fates — deterministic, order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisturbPlan {
    pub seed: u64,
    /// Probability (ppm) a tenant stalls (stops offering) this round.
    pub stall_ppm: u32,
    /// Rounds a stalled tenant stays silent.
    pub stall_rounds: u64,
    /// Probability (ppm) a tenant's arrivals burst this round.
    pub burst_ppm: u32,
    /// Signatures offered in a burst round (vs 1 normally).
    pub burst_size: u32,
    /// Probability (ppm) a tenant skips draining its output this round
    /// (slow consumer).
    pub slow_ppm: u32,
}

impl DisturbPlan {
    /// No disturbances: steady arrivals, prompt consumers.
    pub fn none() -> Self {
        Self { seed: 0, stall_ppm: 0, stall_rounds: 0, burst_ppm: 0, burst_size: 1, slow_ppm: 0 }
    }

    /// The default mixed plan used by `phased`: occasional stalls and
    /// bursts, a fifth of drains skipped.
    pub fn mixed(seed: u64) -> Self {
        Self {
            seed,
            stall_ppm: 30_000,
            stall_rounds: 3,
            burst_ppm: 80_000,
            burst_size: 4,
            slow_ppm: 200_000,
        }
    }

    #[inline]
    fn draw(&self, what: u64, tenant: u64, round: u64, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        let h = splitmix64(
            self.seed
                ^ what.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (tenant + 1).rotate_left(24)
                ^ round.wrapping_mul(0xd134_2543_de82_ef95),
        );
        ((h % 1_000_000) as u32) < ppm
    }

    fn stalls(&self, tenant: u64, round: u64) -> bool {
        self.draw(1, tenant, round, self.stall_ppm)
    }

    fn bursts(&self, tenant: u64, round: u64) -> bool {
        self.draw(2, tenant, round, self.burst_ppm)
    }

    fn slow(&self, tenant: u64, round: u64) -> bool {
        self.draw(3, tenant, round, self.slow_ppm)
    }
}

/// What one tenant replays.
#[derive(Debug, Clone)]
enum Feed {
    /// A captured trace, flattened to wire signatures in deterministic
    /// processor-round-robin order.
    Trace(Arc<Vec<IntervalSignature>>),
    /// A synthetic phase-structured stream.
    Synth(SynthStream),
}

/// One tenant's script: its detector config and its signature source.
#[derive(Debug, Clone)]
pub struct TenantScript {
    cfg: TenantConfig,
    feed: Feed,
    len: usize,
}

impl TenantScript {
    fn sig(&self, i: usize) -> IntervalSignature {
        match &self.feed {
            Feed::Trace(sigs) => sigs[i].clone(),
            Feed::Synth(s) => s.signature(0, i as u64),
        }
    }
}

/// The load/soak scenario: fleet shape, server sizing, disturbances,
/// churn. Fully determines the run's deterministic outcome.
#[derive(Debug, Clone)]
pub struct ServeScenario {
    /// Total tenants admitted over the run (≥ `concurrent`; the surplus
    /// arrives through churn).
    pub tenants: usize,
    /// Live-tenant cap: the fleet size the server sustains at once.
    pub concurrent: usize,
    /// Of the scripts, how many replay real traces (cycled over the five
    /// paper workloads at 16P); the rest are synthetic.
    pub trace_tenants: usize,
    /// Signatures per synthetic tenant.
    pub intervals_per_tenant: usize,
    /// Evict the oldest live tenant (admitting a pending one) every this
    /// many rounds; 0 disables forced churn.
    pub churn_every: u64,
    /// Batch threads for `run_batch_parallel`.
    pub threads: usize,
    pub serve: ServeConfig,
    pub disturb: DisturbPlan,
    /// Seed for the synthetic streams.
    pub seed: u64,
}

impl ServeScenario {
    /// The `phased --smoke` scenario: `tenants` concurrent tenants (no
    /// surplus), short synthetic streams, mixed disturbances, no real
    /// traces (CI-fast).
    pub fn smoke(tenants: usize, seed: u64) -> Self {
        Self {
            tenants,
            concurrent: tenants,
            trace_tenants: 0,
            intervals_per_tenant: 24,
            churn_every: 0,
            threads: crate::parallel::jobs(),
            serve: ServeConfig {
                shards: 16,
                max_tenants: tenants.max(16),
                ..ServeConfig::default()
            },
            disturb: DisturbPlan::mixed(seed),
            seed,
        }
    }
}

/// Deterministic outcome of a scenario run (no wall-clock anywhere).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    pub admitted: u64,
    pub evicted: u64,
    pub rounds: u64,
    /// Signatures offered / accepted / refused (`Busy`) across the fleet.
    pub offered: u64,
    pub accepted: u64,
    pub busy_events: u64,
    pub classified: u64,
    pub delivered: u64,
    /// Work explicitly abandoned by churn evictions (pending+undelivered).
    pub abandoned: u64,
    pub output_stalls: u64,
    /// Disturbance accounting.
    pub stall_rounds: u64,
    pub burst_offers: u64,
    pub skipped_drains: u64,
    /// Highest per-tenant ingest-queue depth ever seen.
    pub queue_high_water: u64,
    /// Peak footprint-table capacity resident at any round boundary.
    pub peak_resident_footprint: usize,
    /// Resident capacity after the final eviction sweep (0 = no leak).
    pub final_resident_footprint: usize,
    /// Ingest-to-classify latency percentiles in ticks (p50, p99, p999).
    pub latency_ticks: (u64, u64, u64),
}

/// Wall-clock measurements, reported separately so artefacts stay
/// byte-stable.
#[derive(Debug, Clone, Copy)]
pub struct ServeTiming {
    pub wall_secs: f64,
    pub classifications_per_sec: f64,
}

/// Build the fleet's scripts: `trace_tenants` replayed captures cycling
/// the five paper workloads at 16P, then synthetic streams.
pub fn build_scripts(sc: &ServeScenario) -> Vec<TenantScript> {
    let thr = Thresholds { bbv: 0.4, dds: 0.25 };
    let mut scripts = Vec::with_capacity(sc.tenants);
    if sc.trace_tenants > 0 {
        let apps = App::EXTENDED;
        let flattened: Vec<Arc<Vec<IntervalSignature>>> = apps
            .iter()
            .map(|&app| {
                let trace = crate::trace::capture_cached(ExperimentConfig::test(app, 16));
                // Deterministic processor-round-robin flattening.
                let mut sigs = Vec::new();
                let mut next = vec![0usize; trace.records.len()];
                loop {
                    let mut progressed = false;
                    for (p, recs) in trace.records.iter().enumerate() {
                        if next[p] < recs.len() {
                            sigs.push(IntervalSignature::from_record(&recs[next[p]]));
                            next[p] += 1;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                Arc::new(sigs)
            })
            .collect();
        for k in 0..sc.trace_tenants {
            let sigs = flattened[k % flattened.len()].clone();
            scripts.push(TenantScript {
                cfg: TenantConfig::new(16, DetectorMode::BbvDdv, thr),
                len: sigs.len(),
                feed: Feed::Trace(sigs),
            });
        }
    }
    for k in scripts.len()..sc.tenants {
        scripts.push(TenantScript {
            cfg: TenantConfig::new(1, DetectorMode::BbvDdv, thr),
            feed: Feed::Synth(SynthStream::new(
                sc.seed ^ (k as u64).wrapping_mul(0xa076_1d64_78bd_642f),
                1,
                dsm_phase::DEFAULT_BBV_ENTRIES,
            )),
            len: sc.intervals_per_tenant,
        });
    }
    scripts
}

struct Active {
    id: TenantId,
    script: usize,
    next: usize,
    stalled_until: u64,
}

/// Window kept per reassembled node stream (bounds soak memory; eviction
/// keeps the true interval indices, so contiguity stays checkable).
const STREAM_WINDOW: usize = 256;

/// Route one drain's worth of classified intervals into the tenant's
/// per-node [`PhaseStream`]s. The shared stream type enforces per-node
/// interval-index contiguity, so any batch/stall/churn path that dropped or
/// reordered an originating interval index would panic here instead of
/// silently skewing downstream consumers.
fn route_drained(
    streams: &mut HashMap<TenantId, Vec<PhaseStream>>,
    id: TenantId,
    drained: &[ClassifiedInterval],
) {
    let per_node = streams.get_mut(&id).expect("streams registered at admit");
    for c in drained {
        per_node[c.proc]
            .push(c.clone())
            .unwrap_or_else(|e| panic!("tenant {id}: delivery broke stream contiguity: {e:?}"));
        per_node[c.proc].truncate_front(STREAM_WINDOW);
    }
}

/// Run a scenario to completion: every admitted tenant either finishes its
/// script (offered, classified, drained) or is churned out with its
/// in-flight work accounted. Panics if the fleet stops making progress.
pub fn run_scenario(sc: &ServeScenario) -> (ServeOutcome, ServeTiming) {
    let scripts = build_scripts(sc);
    assert!(sc.concurrent > 0 && sc.concurrent <= sc.tenants);
    assert!(sc.serve.max_tenants >= sc.concurrent);

    let mut srv = PhaseServer::new(sc.serve);
    let mut out = ServeOutcome {
        admitted: 0,
        evicted: 0,
        rounds: 0,
        offered: 0,
        accepted: 0,
        busy_events: 0,
        classified: 0,
        delivered: 0,
        abandoned: 0,
        output_stalls: 0,
        stall_rounds: 0,
        burst_offers: 0,
        skipped_drains: 0,
        queue_high_water: 0,
        peak_resident_footprint: 0,
        final_resident_footprint: 0,
        latency_ticks: (0, 0, 0),
    };

    let mut active: Vec<Active> = Vec::new();
    let mut streams: HashMap<TenantId, Vec<PhaseStream>> = HashMap::new();
    let mut pending = 0usize; // next script to admit
    let admit = |srv: &mut PhaseServer,
                 active: &mut Vec<Active>,
                 streams: &mut HashMap<TenantId, Vec<PhaseStream>>,
                 pending: &mut usize| {
        let cfg = scripts[*pending].cfg;
        let id = srv.admit(cfg).expect("admission under max_tenants");
        streams.insert(id, (0..cfg.n_procs).map(PhaseStream::new).collect());
        active.push(Active { id, script: *pending, next: 0, stalled_until: 0 });
        *pending += 1;
    };
    while active.len() < sc.concurrent {
        admit(&mut srv, &mut active, &mut streams, &mut pending);
        out.admitted += 1;
    }

    let t0 = Instant::now();
    // Progress is guaranteed per-round only when some tenant is neither
    // stalled nor backpressured; the cap is a generous safety net against
    // livelock bugs, not a tuning knob.
    let max_rounds =
        (sc.intervals_per_tenant as u64 + 64) * 64 + sc.tenants as u64 * 4 + 1_000_000;
    loop {
        out.rounds += 1;
        let round = out.rounds;
        assert!(round < max_rounds, "serve scenario livelocked after {round} rounds");

        // Offers, under disturbances.
        for t in active.iter_mut() {
            let script = &scripts[t.script];
            if t.next >= script.len {
                continue;
            }
            if round < t.stalled_until {
                out.stall_rounds += 1;
                continue;
            }
            if sc.disturb.stalls(t.id.0, round) {
                t.stalled_until = round + sc.disturb.stall_rounds;
                out.stall_rounds += 1;
                continue;
            }
            let burst = if sc.disturb.bursts(t.id.0, round) {
                out.burst_offers += u64::from(sc.disturb.burst_size);
                sc.disturb.burst_size.max(1)
            } else {
                1
            };
            for _ in 0..burst {
                if t.next >= script.len {
                    break;
                }
                out.offered += 1;
                match srv.offer(t.id, script.sig(t.next)).expect("valid signature") {
                    Ingest::Enqueued { .. } => {
                        out.accepted += 1;
                        t.next += 1;
                    }
                    Ingest::Busy => {
                        out.busy_events += 1;
                        break; // retry next round
                    }
                }
            }
        }

        out.classified += srv.run_batch_parallel(sc.threads);

        // Drains, minus slow consumers.
        for t in active.iter() {
            if sc.disturb.slow(t.id.0, round) {
                out.skipped_drains += 1;
                continue;
            }
            let drained = srv.drain_output(t.id, usize::MAX).expect("drain");
            route_drained(&mut streams, t.id, &drained);
            out.delivered += drained.len() as u64;
        }

        out.peak_resident_footprint =
            out.peak_resident_footprint.max(srv.resident_footprint_vectors());

        // Retire tenants that finished and fully flushed.
        let mut i = 0;
        while i < active.len() {
            let done = {
                let t = &active[i];
                t.next >= scripts[t.script].len && srv.queue_depth(t.id) == Some(0)
            };
            if done {
                // Final drain: a slow-consumer draw must not strand output.
                let t = &active[i];
                let drained = srv.drain_output(t.id, usize::MAX).expect("drain");
                route_drained(&mut streams, t.id, &drained);
                out.delivered += drained.len() as u64;
                let summary = srv.evict(t.id).expect("evict live tenant");
                streams.remove(&t.id);
                out.abandoned += summary.pending + summary.undelivered;
                out.evicted += 1;
                active.remove(i);
                if pending < sc.tenants {
                    admit(&mut srv, &mut active, &mut streams, &mut pending);
                    out.admitted += 1;
                }
            } else {
                i += 1;
            }
        }

        // Forced churn: evict the oldest live tenant mid-script.
        if sc.churn_every > 0 && round.is_multiple_of(sc.churn_every) && pending < sc.tenants {
            if let Some(t) = active.first() {
                let summary = srv.evict(t.id).expect("evict live tenant");
                streams.remove(&t.id);
                out.abandoned += summary.pending + summary.undelivered;
                out.evicted += 1;
                active.remove(0);
                admit(&mut srv, &mut active, &mut streams, &mut pending);
                out.admitted += 1;
            }
        }

        if active.is_empty() && pending >= sc.tenants {
            break;
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    let totals = srv.totals();
    out.output_stalls = totals.output_stalls;
    out.queue_high_water = totals.queue_high_water;
    out.final_resident_footprint = srv.resident_footprint_vectors();
    let p = srv.latency_percentiles(&[0.50, 0.99, 0.999]);
    out.latency_ticks = (p[0], p[1], p[2]);

    // Cross-check the driver's books against the server's.
    assert_eq!(out.offered, totals.offered);
    assert_eq!(out.accepted, totals.accepted);
    assert_eq!(out.busy_events, totals.rejected);
    assert_eq!(out.classified, totals.classified);
    assert_eq!(out.delivered, totals.delivered);
    assert_eq!(
        out.classified + out.abandoned,
        out.accepted + (totals.classified - totals.delivered),
        "accepted work must be classified, delivered, or explicitly abandoned"
    );

    let timing = ServeTiming {
        wall_secs,
        classifications_per_sec: if wall_secs > 0.0 {
            out.classified as f64 / wall_secs
        } else {
            0.0
        },
    };
    (out, timing)
}

/// The deterministic `serve.json` payload (schema `dsm-serve-run/v1`).
/// Wall-clock timings are deliberately excluded: reruns must be
/// byte-identical.
pub fn outcome_json(sc: &ServeScenario, out: &ServeOutcome) -> Json {
    Json::obj()
        .field("schema", "dsm-serve-run/v1")
        .field(
            "scenario",
            Json::obj()
                .field("tenants", sc.tenants)
                .field("concurrent", sc.concurrent)
                .field("trace_tenants", sc.trace_tenants)
                .field("intervals_per_tenant", sc.intervals_per_tenant)
                .field("churn_every", sc.churn_every)
                .field("seed", sc.seed)
                .field(
                    "serve",
                    Json::obj()
                        .field("shards", sc.serve.shards)
                        .field("queue_capacity", sc.serve.queue_capacity)
                        .field("output_capacity", sc.serve.output_capacity)
                        .field("batch_size", sc.serve.batch_size)
                        .field("max_tenants", sc.serve.max_tenants),
                )
                .field(
                    "disturb",
                    Json::obj()
                        .field("seed", sc.disturb.seed)
                        .field("stall_ppm", sc.disturb.stall_ppm as u64)
                        .field("stall_rounds", sc.disturb.stall_rounds)
                        .field("burst_ppm", sc.disturb.burst_ppm as u64)
                        .field("burst_size", sc.disturb.burst_size as u64)
                        .field("slow_ppm", sc.disturb.slow_ppm as u64),
                ),
        )
        .field("admitted", out.admitted)
        .field("evicted", out.evicted)
        .field("rounds", out.rounds)
        .field("offered", out.offered)
        .field("accepted", out.accepted)
        .field("busy_events", out.busy_events)
        .field("classified", out.classified)
        .field("delivered", out.delivered)
        .field("abandoned", out.abandoned)
        .field("output_stalls", out.output_stalls)
        .field("stall_rounds", out.stall_rounds)
        .field("burst_offers", out.burst_offers)
        .field("skipped_drains", out.skipped_drains)
        .field("queue_high_water", out.queue_high_water)
        .field("peak_resident_footprint", out.peak_resident_footprint)
        .field("final_resident_footprint", out.final_resident_footprint)
        .field(
            "latency_ticks",
            Json::obj()
                .field("p50", out.latency_ticks.0)
                .field("p99", out.latency_ticks.1)
                .field("p999", out.latency_ticks.2),
        )
}

/// Human summary for `serve.txt` (deterministic, like the JSON).
pub fn outcome_text(sc: &ServeScenario, out: &ServeOutcome) -> String {
    let pairs: Vec<(String, String)> = vec![
        ("tenants (total/concurrent)".into(), format!("{}/{}", sc.tenants, sc.concurrent)),
        ("admitted/evicted".into(), format!("{}/{}", out.admitted, out.evicted)),
        ("rounds".into(), out.rounds.to_string()),
        ("offered".into(), out.offered.to_string()),
        ("accepted".into(), out.accepted.to_string()),
        ("busy (backpressure)".into(), out.busy_events.to_string()),
        ("classified".into(), out.classified.to_string()),
        ("delivered".into(), out.delivered.to_string()),
        ("abandoned by churn".into(), out.abandoned.to_string()),
        ("output stalls".into(), out.output_stalls.to_string()),
        ("stall rounds".into(), out.stall_rounds.to_string()),
        ("burst offers".into(), out.burst_offers.to_string()),
        ("skipped drains".into(), out.skipped_drains.to_string()),
        ("queue high-water".into(), out.queue_high_water.to_string()),
        ("peak resident fvecs".into(), out.peak_resident_footprint.to_string()),
        ("final resident fvecs".into(), out.final_resident_footprint.to_string()),
        (
            "latency ticks p50/p99/p999".into(),
            format!("{}/{}/{}", out.latency_ticks.0, out.latency_ticks.1, out.latency_ticks.2),
        ),
    ];
    dsm_analysis::Table::kv("phase server load/soak run", &pairs).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeScenario {
        ServeScenario {
            tenants: 12,
            concurrent: 4,
            trace_tenants: 0,
            intervals_per_tenant: 10,
            churn_every: 5,
            threads: 1,
            serve: ServeConfig {
                shards: 2,
                queue_capacity: 4,
                output_capacity: 8,
                batch_size: 2,
                max_tenants: 8,
                per_tenant_metrics: false,
                diagnose_window: 0,
            },
            disturb: DisturbPlan::mixed(11),
            seed: 11,
        }
    }

    #[test]
    fn scenario_completes_and_conserves() {
        let sc = tiny();
        let (out, _) = run_scenario(&sc);
        assert_eq!(out.admitted, 12);
        assert_eq!(out.evicted, 12);
        assert_eq!(out.final_resident_footprint, 0, "all tenants evicted");
        assert!(out.busy_events > 0 || out.queue_high_water <= 4);
        assert_eq!(out.offered, out.accepted + out.busy_events);
        assert!(out.classified > 0);
        assert!(out.queue_high_water <= sc.serve.queue_capacity as u64);
    }

    #[test]
    fn scenario_is_deterministic() {
        let sc = tiny();
        let (a, _) = run_scenario(&sc);
        let (b, _) = run_scenario(&sc);
        assert_eq!(a, b);
        assert_eq!(
            outcome_json(&sc, &a).to_string(),
            outcome_json(&sc, &b).to_string()
        );
    }

    #[test]
    fn disturbances_do_something() {
        let mut quiet = tiny();
        quiet.disturb = DisturbPlan::none();
        let (q, _) = run_scenario(&quiet);
        assert_eq!(q.stall_rounds, 0);
        assert_eq!(q.skipped_drains, 0);
        let (noisy, _) = run_scenario(&tiny());
        assert!(noisy.stall_rounds > 0, "mixed plan must stall someone");
        assert!(noisy.skipped_drains > 0);
        assert!(noisy.rounds >= q.rounds);
    }
}
