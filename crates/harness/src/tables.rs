//! Tables I (simulated architecture) and II (applications and input sets).

use dsm_analysis::table::Table;
use dsm_sim::config::SystemConfig;
use dsm_workloads::inputs::{AppInput, ArtInput, EquakeInput, FmmInput, LuInput, OceanInput};
use dsm_workloads::{App, Scale};

/// Table I: summary of the simulated architecture.
pub fn table1() -> Table {
    let c = SystemConfig::paper(32);
    let mut t = Table::new(vec!["Parameter", "Value"])
        .with_title("TABLE I — SUMMARY OF SIMULATED ARCHITECTURE");
    t.row(vec![
        "Processor Frequency".to_string(),
        format!("{}GHz", c.freq_mhz / 1000),
    ]);
    t.row(vec![
        "Functional Units".to_string(),
        format!("{} ALU, {} FPU", c.core.commit_width, c.core.fpu_units),
    ]);
    t.row(vec![
        "Fetch/Issue/Commit".to_string(),
        format!("{w}/{w}/{w}", w = c.core.commit_width),
    ]);
    t.row(vec![
        "Register File".to_string(),
        "128 Int, 128 FP".to_string(),
    ]);
    t.row(vec![
        "Branch Predictor".to_string(),
        format!("{}-entry gshare", c.core.gshare_entries),
    ]);
    t.row(vec![
        "L1".to_string(),
        format!(
            "{}kB, {}, {} cycle",
            c.l1.size_bytes / 1024,
            if c.l1.assoc == 1 {
                "direct-mapped".to_string()
            } else {
                format!("{}-way", c.l1.assoc)
            },
            c.l1.latency_cycles
        ),
    ]);
    t.row(vec![
        "L2".to_string(),
        format!(
            "{}MB, {}-way, {}B, {} cycles",
            c.l2.size_bytes / (1024 * 1024),
            c.l2.assoc,
            c.l2.line_bytes,
            c.l2.latency_cycles
        ),
    ]);
    t.row(vec![
        "Memory".to_string(),
        format!(
            "SDRAM interleaved, {}ns, 2.6GB/s",
            c.memory.latency_cycles * 1000 / (c.freq_mhz)
        ),
    ]);
    t.row(vec![
        "Network".to_string(),
        format!(
            "Hypercube, wormhole, 400MHz pipelined router, {}ns pin-to-pin",
            c.network.hop_cycles * 1000 / c.freq_mhz
        ),
    ]);
    t
}

/// Table II: applications and input sets, at paper scale with the scaled
/// defaults alongside.
pub fn table2() -> Table {
    let mut t = Table::new(vec![
        "Application",
        "Input Set (paper)",
        "Input Set (scaled default)",
    ])
    .with_title("TABLE II — APPLICATIONS USED IN THE EXPERIMENTS");
    for app in App::ALL {
        let (paper, scaled) = match app {
            App::Lu => (
                AppInput::Lu(LuInput::at(Scale::Paper)),
                AppInput::Lu(LuInput::at(Scale::Scaled)),
            ),
            App::Fmm => (
                AppInput::Fmm(FmmInput::at(Scale::Paper)),
                AppInput::Fmm(FmmInput::at(Scale::Scaled)),
            ),
            App::Art => (
                AppInput::Art(ArtInput::at(Scale::Paper)),
                AppInput::Art(ArtInput::at(Scale::Scaled)),
            ),
            App::Equake => (
                AppInput::Equake(EquakeInput::at(Scale::Paper)),
                AppInput::Equake(EquakeInput::at(Scale::Scaled)),
            ),
            // Not in the paper's Table II; only reachable if a caller
            // iterates App::EXTENDED.
            App::Ocean => {
                let i = OceanInput::at(Scale::Paper);
                let s = OceanInput::at(Scale::Scaled);
                t.row(vec![
                    app.name().to_string(),
                    format!("{g}x{g} grid (extension)", g = i.grid),
                    format!("{g}x{g} grid (extension)", g = s.grid),
                ]);
                continue;
            }
        };
        t.row(vec![
            app.name().to_string(),
            paper.describe(),
            scaled.describe(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let s = table1().render();
        assert!(s.contains("2GHz"));
        assert!(s.contains("6 ALU, 4 FPU"));
        assert!(s.contains("6/6/6"));
        assert!(s.contains("2048-entry gshare"));
        assert!(s.contains("16kB, direct-mapped, 1 cycle"));
        assert!(s.contains("2MB, 8-way, 32B, 12 cycles"));
        assert!(s.contains("75ns"));
        assert!(s.contains("16ns pin-to-pin"));
    }

    #[test]
    fn table2_lists_all_apps() {
        let t = table2();
        assert_eq!(t.n_rows(), 4);
        let s = t.render();
        assert!(s.contains("512x512 matrix, 16x16 block"));
        assert!(s.contains("65536 particles"));
    }
}
