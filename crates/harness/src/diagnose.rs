//! Offline cross-node diagnosis report (`results/diagnose.{txt,json}`).
//!
//! For each workload at 16P the report runs three columns and hands the
//! classified per-node streams — never the fault plan or placement policy —
//! to the `dsm-diagnose` engine:
//!
//! * **fault-free** — the golden capture; the expected verdict is a single
//!   behavioural cluster (or at least no strong outlier);
//! * **straggler** — PR 3's fault layer re-run with a targeted per-node
//!   slowdown over the middle third of the golden run
//!   ([`FaultPlan::straggler`]); the expected verdict is the injected node
//!   as top outlier with a flagged interval range overlapping the injected
//!   epoch. The report grades this (`localized`) because *it* knows the
//!   plan; the engine does not — `tests/diagnose_localization.rs` holds
//!   that gate on all five workloads;
//! * **serial-init** — the workload behind a serial-initialization prologue
//!   under first-touch homing (the classic placement pathology): node 0
//!   homes everyone's data, so its remote-miss share collapses while its
//!   peers' soar, and attribution should surface `PlacementSkew`.
//!
//! Telemetry joined against each outlier comes from the run's own
//! [`SystemStats`] — per-node miss/stall shares plus the global fault and
//! reconfiguration counters every node sees identically.

use dsm_diagnose::{diagnose, DiagnoseConfig, Diagnosis, NodeTelemetry};
use dsm_phase::detector::{DetectorGeometry, DetectorMode, TraceClassifier, TraceCollector};
use dsm_phase::stream::PhaseStream;
use dsm_phase::{ClassifiedInterval, DEFAULT_FOOTPRINT_VECTORS};
use dsm_sim::config::{DistributionPolicy, FaultPlan};
use dsm_sim::network::Network;
use dsm_sim::system::System;
use dsm_workloads::{make_serial_init_stream, App};

use dsm_phase::detector::DetectorGeometry as Geometry;

use crate::experiment::ExperimentConfig;
use crate::faults::SWEEP_THRESHOLDS;
use crate::json::Json;
use crate::trace::{capture_with, SystemTrace};

/// Seed for the report's injected straggler plans.
pub const DIAGNOSE_SEED: u64 = 99;

/// Sampling-interval divisor for the diagnosis captures. Test-scale runs
/// span only a handful of default-size intervals per node — too coarse to
/// localize an epoch, and coarse enough that per-node interval counts
/// diverge wildly. Finer sampling is an observation-rate change only (same
/// rationale as the placement study's divisor). The rate is picked so every
/// node's phases *recur*: the CPI-residual term needs at least two
/// instances of a phase to contrast a slowed instance against a clean one.
pub const DIAG_INTERVAL_DIVISOR: u64 = 32;

/// Capture `config` at the diagnosis sampling rate, optionally under a
/// fault plan.
pub fn capture_diag(config: ExperimentConfig, plan: Option<FaultPlan>) -> SystemTrace {
    let mut sys_cfg = config.system_config();
    sys_cfg.interval_insns = (sys_cfg.interval_insns / DIAG_INTERVAL_DIVISOR).max(1);
    if let Some(p) = plan {
        sys_cfg.fault = p;
    }
    capture_with(config, sys_cfg, Geometry::default())
}

/// Engine configuration the report (and the localization gate) runs at.
/// Real test-scale captures are nothing like an idealized SPMD fleet:
/// nodes run asymmetric work partitions, so the phase and lag terms carry
/// a large *structural* cross-node disagreement floor that no fault
/// injection changes. The phase-normalized CPI residual term is the one
/// term that stays near zero between healthy nodes (each node's phases
/// explain its own CPI) and rises only under a genuine anomaly — so the
/// report weights it dominantly and keeps phase/lag as tie-breaking
/// context.
pub fn report_config() -> DiagnoseConfig {
    DiagnoseConfig {
        phase_weight: 0.5,
        cpi_weight: 8.0,
        lag_weight: 0.25,
        // Healthy nodes carry diffuse low-level residual jitter (warmup
        // instances, data-dependent phase behaviour); the deadband keeps
        // that out of the score so only straggler-scale excursions count.
        cpi_deadband: 0.2,
        ..DiagnoseConfig::default()
    }
}

/// The node the report's straggler plan targets for `app` — spread across
/// the machine deterministically so every report run injects the same
/// fault into the same place.
pub fn straggler_node(app: App, n_procs: usize) -> usize {
    let ix = App::EXTENDED.iter().position(|&a| a == app).unwrap_or(0);
    (ix * 7 + 5) % n_procs
}

/// The injected plan for `app`: a full-strength targeted slowdown spanning
/// the second quarter through fifteen-sixteenths of the target node's
/// *intervals* in the golden run,
/// `(plan, from_cycle, until_cycle)`. The epoch is picked on the interval
/// axis rather than as a fraction of the finish cycle because early
/// intervals are sync-wait-dominated and eat most of the cycle axis — a
/// cycle-based window can land on a handful of intervals. The fault layer
/// gates on wall-clock cycles, and the slowdown *stretches* the intervals
/// it covers, so a window sized from golden cycles alone would be consumed
/// after a few stretched intervals; `until` is therefore widened by the
/// deterministic issue-throttle cost of the intended intervals
/// (`insns * slowdown_issue_num / 256` each) so the epoch covers the
/// intended interval range on the faulty timeline. The window leaves the
/// first quarter and the final sixteenth clean — the residual term detects
/// a slowed instance only by contrast against clean instances of the
/// *same* phase, so an epoch that swallows the whole run normalizes
/// itself away. The report re-maps the window onto the faulty run's own
/// timeline when grading.
pub fn straggler_plan(app: App, golden: &SystemTrace) -> (FaultPlan, u64, u64) {
    let n_procs = golden.config.n_procs;
    let node = straggler_node(app, n_procs);
    let recs = &golden.records[node];
    let cum: Vec<u64> = recs
        .iter()
        .scan(0u64, |acc, r| {
            *acc += r.cycles;
            Some(*acc)
        })
        .collect();
    let plan = FaultPlan::straggler(DIAGNOSE_SEED, node, 0, 0);
    let (from, until) = if recs.len() >= 8 {
        let (lo_ix, hi_ix) = (recs.len() / 4, 15 * recs.len() / 16);
        let throttle: u64 = recs[lo_ix..hi_ix]
            .iter()
            .map(|r| r.insns * plan.slowdown_issue_num / 256)
            .sum();
        (cum[lo_ix - 1], cum[hi_ix - 1] + throttle)
    } else {
        (golden.stats.finish_cycle / 4, 15 * golden.stats.finish_cycle / 16)
    };
    (FaultPlan { slowdown_from_cycle: from, slowdown_until_cycle: until, ..plan }, from, until)
}

/// Classify a captured trace per node at the sweep thresholds and thread
/// the result through the shared [`PhaseStream`] type.
pub fn classified_streams(trace: &SystemTrace) -> Vec<PhaseStream> {
    trace
        .records
        .iter()
        .enumerate()
        .map(|(p, recs)| {
            let ids = TraceClassifier::classify_proc(
                recs,
                DetectorMode::BbvDdv,
                SWEEP_THRESHOLDS,
                DEFAULT_FOOTPRINT_VECTORS,
            );
            let mut seen: Vec<u32> = Vec::new();
            let intervals: Vec<ClassifiedInterval> = recs
                .iter()
                .zip(&ids)
                .map(|(r, &id)| {
                    let is_new = !seen.contains(&id);
                    if is_new {
                        seen.push(id);
                    }
                    ClassifiedInterval {
                        proc: p,
                        index: r.index,
                        phase_id: id,
                        is_new_phase: is_new,
                        cpi: r.cpi(),
                        degraded: false,
                    }
                })
                .collect();
            PhaseStream::from_intervals(p, intervals)
        })
        .collect()
}

/// Per-node telemetry counters from a run's own statistics: the per-node
/// miss/stall shares, the per-node degraded-interval count from the
/// classified stream, and the global fault/NACK/reconfig counters (every
/// node carries the same global value, so they can corroborate but never
/// fabricate a per-node excess).
pub fn node_telemetry(trace: &SystemTrace, streams: &[PhaseStream]) -> Vec<NodeTelemetry> {
    let s = &trace.stats;
    s.procs
        .iter()
        .enumerate()
        .map(|(p, ps)| NodeTelemetry {
            remote_miss_share: ps.remote_miss_fraction(),
            barrier_stall_share: if ps.cycles > 0 {
                ps.sync_wait_cycles as f64 / ps.cycles as f64
            } else {
                0.0
            },
            mem_stall_share: if ps.cycles > 0 {
                ps.mem_stall_cycles as f64 / ps.cycles as f64
            } else {
                0.0
            },
            degraded_intervals: streams
                .get(p)
                .map_or(0, |st| st.intervals().iter().filter(|c| c.degraded).count() as u64),
            retries: s.faults.retries,
            nacks: s.directory.nacks,
            reconfig_events: s.reconfig.migrations + s.reconfig.dvfs_epochs + s.reconfig.core_switches,
        })
        .collect()
}

/// The inclusive interval-index range of `node`'s stream whose cycle span
/// intersects `[from_cycle, until_cycle)` — the injected epoch mapped onto
/// interval indices via the node's own cumulative interval cycles.
pub fn cycle_window_to_intervals(
    trace: &SystemTrace,
    node: usize,
    from_cycle: u64,
    until_cycle: u64,
) -> Option<(u64, u64)> {
    let mut lo = None;
    let mut hi = None;
    let mut start = 0u64;
    for r in &trace.records[node] {
        let end = start + r.cycles;
        if start < until_cycle && end > from_cycle {
            lo.get_or_insert(r.index);
            hi = Some(r.index);
        }
        start = end;
    }
    lo.zip(hi)
}

/// One diagnosed column of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseColumn {
    /// `fault-free`, `straggler`, or `serial-init`.
    pub label: String,
    pub diagnosis: Diagnosis,
    /// `(node, from_interval, to_interval)` of the injected straggler epoch
    /// (straggler column only) — ground truth the *report* knows for
    /// grading; the engine never sees it.
    pub injected: Option<(usize, u64, u64)>,
    /// Straggler column: did the engine's top outlier match the injected
    /// node with an overlapping flagged range?
    pub localized: Option<bool>,
}

/// One workload's report: the three columns at 16P.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseReport {
    pub app: App,
    pub n_procs: usize,
    pub seed: u64,
    pub columns: Vec<DiagnoseColumn>,
}

fn diagnose_trace(trace: &SystemTrace) -> Diagnosis {
    let streams = classified_streams(trace);
    let telemetry = node_telemetry(trace, &streams);
    diagnose(&report_config(), &streams, Some(&telemetry))
}

/// Capture the serial-init + first-touch placement column: the same
/// machine, the workload behind a serial-initialization prologue, sampled
/// finely enough for test-scale runs (same divisor as the placement study).
pub fn capture_serial_init(config: ExperimentConfig) -> SystemTrace {
    let mut sys_cfg = config.system_config();
    sys_cfg.distribution = DistributionPolicy::FirstTouch;
    sys_cfg.interval_insns = (sys_cfg.interval_insns / DIAG_INTERVAL_DIVISOR).max(1);
    let stream = make_serial_init_stream(config.app, config.n_procs, config.scale);
    let dist = Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = TraceCollector::new(config.n_procs, dist, DetectorGeometry::default());
    let (stats, collector) = System::new(sys_cfg, stream, collector).run();
    SystemTrace {
        config,
        ddv_vectors_exchanged: collector.ddv().vectors_exchanged(),
        records: collector.records,
        stats,
    }
}

/// Diagnose one workload at `n_procs` across the report's columns.
/// `serial_init: false` drops the placement column (the smoke run).
pub fn diagnose_app(app: App, n_procs: usize, serial_init: bool) -> DiagnoseReport {
    let config = ExperimentConfig::test(app, n_procs);
    let golden = capture_diag(config, None);
    let mut columns = vec![DiagnoseColumn {
        label: "fault-free".into(),
        diagnosis: diagnose_trace(&golden),
        injected: None,
        localized: None,
    }];

    let (plan, from, until) = straggler_plan(app, &golden);
    let node = plan.slowdown_node.expect("straggler plan targets a node");
    let faulty = capture_diag(config, Some(plan));
    let diagnosis = diagnose_trace(&faulty);
    let injected = cycle_window_to_intervals(&faulty, node, from, until)
        .map(|(lo, hi)| (node, lo, hi));
    let localized = injected.map(|(node, lo, hi)| {
        diagnosis.outliers.first().is_some_and(|o| {
            o.node == node && o.flagged.is_some_and(|(a, b)| a <= hi && b >= lo)
        })
    });
    columns.push(DiagnoseColumn { label: "straggler".into(), diagnosis, injected, localized });

    if serial_init {
        let placed = capture_serial_init(config);
        columns.push(DiagnoseColumn {
            label: "serial-init".into(),
            diagnosis: diagnose_trace(&placed),
            injected: None,
            localized: None,
        });
    }

    DiagnoseReport { app, n_procs, seed: DIAGNOSE_SEED, columns }
}

/// The full report: all five workloads, all three columns.
pub fn full_report() -> Vec<DiagnoseReport> {
    App::EXTENDED.iter().map(|&app| diagnose_app(app, 16, true)).collect()
}

/// The CI smoke report: LU + Ocean, fault-free + straggler columns.
pub fn smoke_report() -> Vec<DiagnoseReport> {
    [App::Lu, App::Ocean].iter().map(|&app| diagnose_app(app, 16, false)).collect()
}

fn diagnosis_json(d: &Diagnosis) -> Json {
    Json::obj()
        .field("n_nodes", d.n_nodes)
        .field("aligned_intervals", d.aligned_intervals)
        .field(
            "clusters",
            Json::Arr(
                d.clusters
                    .iter()
                    .map(|c| Json::Arr(c.iter().map(|&n| Json::from(n)).collect()))
                    .collect(),
            ),
        )
        .field("majority", d.majority)
        .field("scores", Json::Arr(d.scores.iter().map(|&s| Json::from(s)).collect()))
        .field(
            "outliers",
            Json::Arr(
                d.outliers
                    .iter()
                    .map(|o| {
                        let mut j = Json::obj().field("node", o.node).field("score", o.score);
                        j = match o.flagged {
                            Some((lo, hi)) => j
                                .field("flagged_from", lo)
                                .field("flagged_to", hi),
                            None => j,
                        };
                        j.field(
                            "hints",
                            Json::Arr(
                                o.hints
                                    .iter()
                                    .map(|h| {
                                        Json::obj()
                                            .field("kind", h.kind.name())
                                            .field("score", h.score)
                                            .field(
                                                "evidence",
                                                Json::Arr(
                                                    h.evidence
                                                        .iter()
                                                        .map(|(k, v)| {
                                                            Json::obj()
                                                                .field("counter", k.as_str())
                                                                .field("delta", *v)
                                                        })
                                                        .collect(),
                                                ),
                                            )
                                    })
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        )
}

/// JSON artefact, schema `dsm-diagnose/v1` (documented in EXPERIMENTS.md).
pub fn reports_json(reports: &[DiagnoseReport]) -> Json {
    let cfg = report_config();
    Json::obj()
        .field("schema", "dsm-diagnose/v1")
        .field("seed", DIAGNOSE_SEED)
        .field(
            "config",
            Json::obj()
                .field("phase_weight", cfg.phase_weight)
                .field("cpi_weight", cfg.cpi_weight)
                .field("lag_weight", cfg.lag_weight)
                .field("cpi_deadband", cfg.cpi_deadband)
                .field("max_lag", cfg.max_lag)
                .field("degraded_weight", cfg.degraded_weight)
                .field("cluster_threshold", cfg.cluster_threshold)
                .field("cpi_flag_rel", cfg.cpi_flag_rel)
                .field("gap_tolerance", cfg.gap_tolerance)
                .field("attr_rel", cfg.attr_rel),
        )
        .field(
            "apps",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("app", r.app.name())
                            .field("n_procs", r.n_procs)
                            .field(
                                "columns",
                                Json::Arr(
                                    r.columns
                                        .iter()
                                        .map(|c| {
                                            let mut j = Json::obj()
                                                .field("label", c.label.as_str())
                                                .field("diagnosis", diagnosis_json(&c.diagnosis));
                                            if let Some((node, lo, hi)) = c.injected {
                                                j = j
                                                    .field("injected_node", node)
                                                    .field("injected_from", lo)
                                                    .field("injected_to", hi);
                                            }
                                            match c.localized {
                                                Some(l) => j.field("localized", l),
                                                None => j,
                                            }
                                        })
                                        .collect(),
                                ),
                            )
                    })
                    .collect(),
            ),
        )
}

/// Human-readable report with the slowdown-localization validation table.
pub fn reports_text(reports: &[DiagnoseReport]) -> String {
    let mut out = String::from("cross-node phase-similarity diagnosis\n");
    for r in reports {
        out.push_str(&format!("\n{} {}P (seed {})\n", r.app.name(), r.n_procs, r.seed));
        for c in &r.columns {
            let d = &c.diagnosis;
            out.push_str(&format!(
                "  {:<11} clusters {:>2}  majority {:>2} nodes  outliers {}\n",
                c.label,
                d.clusters.len(),
                d.majority_nodes().len(),
                d.outliers.len(),
            ));
            for o in &d.outliers {
                let range = o
                    .flagged
                    .map_or("-".to_string(), |(a, b)| format!("[{a}, {b}]"));
                let hint = o.hints.first().map_or("-", |h| h.kind.name());
                out.push_str(&format!(
                    "              node {:>2}  score {:.4}  flagged {:<12} hint {}\n",
                    o.node, o.score, range, hint,
                ));
            }
        }
    }
    out.push_str("\nslowdown localization (straggler column)\n");
    out.push_str(&format!(
        "{:>8} {:>9} {:>11} {:>13} {:>13} {:>10}\n",
        "app", "injected", "top outlier", "injected ivls", "flagged ivls", "localized",
    ));
    for r in reports {
        let Some(c) = r.columns.iter().find(|c| c.label == "straggler") else { continue };
        let (node, lo, hi) = c.injected.expect("straggler column records its injection");
        let top = c.diagnosis.outliers.first();
        out.push_str(&format!(
            "{:>8} {:>9} {:>11} {:>13} {:>13} {:>10}\n",
            r.app.name(),
            node,
            top.map_or("-".to_string(), |o| o.node.to_string()),
            format!("[{lo}, {hi}]"),
            top.and_then(|o| o.flagged).map_or("-".to_string(), |(a, b)| format!("[{a}, {b}]")),
            c.localized.map_or("-".to_string(), |l| l.to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_column_localizes_on_lu() {
        let r = diagnose_app(App::Lu, 16, false);
        assert_eq!(r.columns.len(), 2);
        let c = &r.columns[1];
        assert_eq!(c.label, "straggler");
        assert_eq!(c.localized, Some(true), "column: {c:#?}");
    }

    #[test]
    fn serial_init_column_surfaces_placement_skew() {
        let r = diagnose_app(App::Lu, 16, true);
        let c = &r.columns[2];
        assert_eq!(c.label, "serial-init");
        let has_skew = c.diagnosis.outliers.iter().any(|o| {
            o.hints.iter().any(|h| h.kind == dsm_diagnose::HintKind::PlacementSkew)
        });
        assert!(has_skew, "column: {c:#?}");
    }

    #[test]
    fn report_json_is_stable_and_self_parses() {
        let reports = vec![diagnose_app(App::Lu, 16, false)];
        let a = reports_json(&reports).to_string();
        let b = reports_json(&reports).to_string();
        assert_eq!(a, b);
        let back = crate::json::parse(&a).expect("self-parse");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("dsm-diagnose/v1"));
        let apps = back.get("apps").and_then(Json::as_arr).unwrap();
        assert_eq!(apps.len(), 1);
        let cols = apps[0].get("columns").and_then(Json::as_arr).unwrap();
        assert_eq!(cols.len(), 2);
        assert!(cols[1].get("localized").is_some());
    }
}
