//! Scale sweep: single-run throughput and detection quality past the
//! paper's 16 processors (ROADMAP "Scale past the paper").
//!
//! The paper's evaluation stops at 16P; at 64–128P the per-interval
//! all-to-one DDV gather is the simulator's hot spot (O(n²) per interval
//! across the run). This module measures, at each point of
//! [`SCALE_PROCS`]:
//!
//! * the **reference arm** — the serial core with the pre-optimization
//!   all-to-one gather ([`TraceCollector::set_reference_gather`]), i.e.
//!   what one run cost before the sharded core landed;
//! * the **sharded arm** — the production path
//!   ([`crate::trace::capture_sharded`]'s machinery): sharded scheduler
//!   under the conservative window barrier, staged observer work drained
//!   by host workers, O(n) aggregate gather with hierarchical (tree)
//!   collection accounting.
//!
//! Both arms are bit-identical by construction (the fast aggregate gather
//! equals the reference walk, and the sharded schedule replays the serial
//! pick order); the sweep re-asserts this at every point before reporting
//! the speedup, so the scaling curve can never drift from a correct run.
//! Events/sec excludes machine construction, matching `dsm-bench`'s
//! simulation timings.

use std::time::Instant;

use dsm_phase::ddv::GatherTopology;
use dsm_phase::detector::{DetectorGeometry, TraceCollector};
use dsm_phase::ShardedCollector;
use dsm_sim::system::System;
use dsm_workloads::{make_stream, App};

use crate::experiment::ExperimentConfig;
use crate::json::Json;

/// The node counts of the scaling curve: the paper's maximum and the two
/// beyond-paper points.
pub const SCALE_PROCS: [usize; 3] = [16, 64, 128];

/// Shard count used for `n_procs` nodes: one shard per 16 nodes, at least
/// two so the window machinery is always exercised.
pub fn shards_for(n_procs: usize) -> usize {
    (n_procs / 16).max(2).min(n_procs)
}

/// One point of the scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub app: App,
    pub n_procs: usize,
    /// Shards the sharded arm ran with.
    pub shards: usize,
    /// Observer worker threads (after the host-core budget guard).
    pub threads: usize,
    /// Events executed by one run (identical in both arms).
    pub events: u64,
    /// Reference arm: serial core, all-to-one O(n²) gather.
    pub reference_events_per_sec: f64,
    /// Sharded arm: windowed sharded core, O(n) aggregate gather.
    pub sharded_events_per_sec: f64,
    /// `sharded_events_per_sec / reference_events_per_sec`.
    pub speedup: f64,
    /// Conservative windows closed.
    pub windows: u64,
    /// Window lookahead in cycles (min cross-shard delivery latency).
    pub lookahead: u64,
    /// Shard-windows spent idle at the conservative barrier.
    pub barrier_stalls: u64,
    /// Horizon-gated events executed.
    pub gated_events: u64,
    /// Observer drains executed at window boundaries.
    pub drains: u64,
    /// Processor queues claimed by out-of-range workers (work steals).
    pub steals: u64,
    /// Critical-path collection rounds under the hierarchical tree
    /// (arity 2): queries × ⌈log₂-depth⌉, vs `queries` × 1 wide all-to-one
    /// rounds with an n−1 root fan-in in the reference arm.
    pub gather_rounds: u64,
    /// End-of-interval gathers served.
    pub queries: u64,
    /// Intervals captured across all processors.
    pub intervals: usize,
    /// Detector-quality signal at scale: CoV of per-interval system CPI.
    pub cov_cpi: f64,
    /// Sharded records and stats were byte-equal to the reference arm's.
    pub bit_identical: bool,
}

impl ScalePoint {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("app", self.app.name())
            .field("n_procs", self.n_procs)
            .field("shards", self.shards)
            .field("threads", self.threads)
            .field("events", self.events)
            .field("reference_events_per_sec", round3(self.reference_events_per_sec))
            .field("sharded_events_per_sec", round3(self.sharded_events_per_sec))
            .field("speedup", round3(self.speedup))
            .field("windows", self.windows)
            .field("lookahead", self.lookahead)
            .field("barrier_stalls", self.barrier_stalls)
            .field("gated_events", self.gated_events)
            .field("drains", self.drains)
            .field("steals", self.steals)
            .field("gather_rounds", self.gather_rounds)
            .field("queries", self.queries)
            .field("intervals", self.intervals)
            .field("cov_cpi", round3(self.cov_cpi))
            .field("bit_identical", self.bit_identical)
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Output of one timed arm.
struct ArmRun {
    secs: f64,
    events: u64,
    stats: dsm_sim::stats::SystemStats,
    records: Vec<Vec<dsm_phase::detector::IntervalRecord>>,
    windows: dsm_sim::shard::WindowCounters,
    drains: dsm_phase::DrainCounters,
    gather_rounds: u64,
    queries: u64,
}

/// One serial run with the pre-optimization all-to-one gather.
fn reference_run(cfg: &ExperimentConfig) -> ArmRun {
    let sys_cfg = cfg.system_config();
    let stream = make_stream(cfg.app, cfg.n_procs, cfg.scale);
    let dist = dsm_sim::network::Network::new(sys_cfg.network, cfg.n_procs).distance_matrix();
    let mut collector = TraceCollector::new(cfg.n_procs, dist, DetectorGeometry::default());
    collector.set_reference_gather(true);
    let mut system = System::new(sys_cfg, stream, collector);
    let t0 = Instant::now();
    system.run_to_interval(u64::MAX);
    let secs = t0.elapsed().as_secs_f64();
    let events = system.events_executed();
    let (stats, collector) = system.run_to_end();
    ArmRun {
        secs,
        events,
        stats,
        gather_rounds: collector.ddv().gather_rounds(),
        queries: collector.ddv().queries(),
        records: collector.records,
        windows: Default::default(),
        drains: Default::default(),
    }
}

/// One run on the sharded core: windowed scheduler, staged observer work,
/// O(n) aggregate gather accounted along a binary reduction tree.
fn sharded_run(cfg: &ExperimentConfig, shards: usize, threads: usize) -> ArmRun {
    let sys_cfg = cfg.system_config();
    let stream = make_stream(cfg.app, cfg.n_procs, cfg.scale);
    let dist = dsm_sim::network::Network::new(sys_cfg.network, cfg.n_procs).distance_matrix();
    let mut inner = TraceCollector::new(cfg.n_procs, dist, DetectorGeometry::default());
    inner
        .ddv_mut()
        .set_collection_topology(GatherTopology::Tree { arity: 2 });
    let collector = ShardedCollector::new(inner, threads);
    let mut system = System::new(sys_cfg, stream, collector);
    system.enable_sharding(shards);
    let t0 = Instant::now();
    system.run_to_interval(u64::MAX);
    let windows = system.window_counters();
    let events = system.events_executed();
    let (stats, mut collector) = system.run_to_end();
    collector.collector(); // final drain inside the timed region
    let secs = t0.elapsed().as_secs_f64();
    let drains = collector.counters();
    let inner = collector.into_inner();
    ArmRun {
        secs,
        events,
        stats,
        gather_rounds: inner.ddv().gather_rounds(),
        queries: inner.ddv().queries(),
        records: inner.records,
        windows,
        drains,
    }
}

/// Measure one point of the curve. `samples` timed runs per arm; the
/// reported rate uses the minimum time (least-contended estimate, as in
/// `dsm-bench`). Counters and records are deterministic across samples.
pub fn scale_point(app: App, n_procs: usize, samples: usize) -> ScalePoint {
    // The finest point of the interval sensitivity sweep (4k-insn system
    // base): the collection-bound regime. With a fixed system-wide budget
    // the per-processor interval shrinks as n grows (62 insns/proc at
    // 64P), so per-interval DDV gathering dominates — the documented hot
    // spot past the paper's 16P, which is exactly what the scaling
    // question is about and what the hierarchical reduction attacks.
    let cfg = ExperimentConfig {
        interval_base: 4_000,
        ..ExperimentConfig::test(app, n_procs)
    };
    let shards = shards_for(n_procs);
    let threads = crate::parallel::budget_observer_threads(shards);

    let mut reference = reference_run(&cfg);
    let mut sharded = sharded_run(&cfg, shards, threads);
    for _ in 1..samples.max(1) {
        let r = reference_run(&cfg);
        if r.secs < reference.secs {
            reference = r;
        }
        let s = sharded_run(&cfg, shards, threads);
        if s.secs < sharded.secs {
            sharded = s;
        }
    }

    let bit_identical =
        sharded.stats == reference.stats && sharded.records == reference.records;
    assert!(
        bit_identical,
        "sharded run diverged from the serial reference at {}P",
        n_procs
    );
    assert_eq!(sharded.events, reference.events);

    let cpis: Vec<f64> = dsm_simpoint::interval_cpis(&sharded.records)
        .iter()
        .map(|c| c.cpi)
        .collect();
    let (_, cov_cpi) = dsm_simpoint::mean_and_cov(&cpis);

    let reference_eps = sharded.events as f64 / reference.secs;
    let sharded_eps = sharded.events as f64 / sharded.secs;
    ScalePoint {
        app,
        n_procs,
        shards,
        threads,
        events: sharded.events,
        reference_events_per_sec: reference_eps,
        sharded_events_per_sec: sharded_eps,
        speedup: sharded_eps / reference_eps,
        windows: sharded.windows.windows,
        lookahead: sharded.windows.lookahead,
        barrier_stalls: sharded.windows.barrier_stalls,
        gated_events: sharded.windows.gated_events,
        drains: sharded.drains.drains,
        steals: sharded.drains.steals,
        gather_rounds: sharded.gather_rounds,
        queries: sharded.queries,
        intervals: sharded.records.iter().map(|r| r.len()).sum(),
        cov_cpi,
        bit_identical,
    }
}

/// The full scaling curve at [`SCALE_PROCS`].
pub fn scale_sweep(app: App, samples: usize) -> Vec<ScalePoint> {
    SCALE_PROCS
        .iter()
        .map(|&p| scale_point(app, p, samples))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_for_matches_policy() {
        assert_eq!(shards_for(16), 2);
        assert_eq!(shards_for(64), 4);
        assert_eq!(shards_for(128), 8);
        assert_eq!(shards_for(2), 2);
    }

    #[test]
    fn scale_point_is_bit_identical_and_counts() {
        // Small point so the test stays fast; the bin runs the real curve.
        let p = scale_point(App::Lu, 16, 1);
        assert!(p.bit_identical);
        assert_eq!(p.shards, 2);
        assert!(p.events > 0);
        assert!(p.windows > 0);
        assert!(p.intervals > 0);
        assert!(p.queries > 0);
        // Tree collection at 16 nodes: depth 4 per gather (1+2+4+8 ≥ 16).
        assert_eq!(p.gather_rounds, p.queries * 4);
        assert!(p.cov_cpi >= 0.0);
        assert!(p.reference_events_per_sec > 0.0 && p.sharded_events_per_sec > 0.0);
    }
}
