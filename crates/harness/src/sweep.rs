//! Threshold sweeps: turn one captured trace into a CoV curve per detector.
//!
//! Per the paper's methodology (§III-A): "We examine two hundred threshold
//! values. We compute identifier CoV curves for each processor, and then
//! average them together to obtain the overall system-wide CoV curve."
//! For BBV+DDV the sweep is a 2-D grid over (BBV, DDS) thresholds and the
//! reported curve is the set of all grid points (its lower envelope is
//! taken at plot time).
//!
//! Every threshold point is classified independently, so each sweep fans
//! its inner loop out over [`crate::parallel::par_map`]; results come back
//! in threshold order, keeping curves byte-identical to a serial run.

use dsm_analysis::cov::{identifier_cov, phase_count};
use dsm_analysis::curve::{CovCurve, CurvePoint};
use dsm_phase::branch_count::BranchCountDetector;
use dsm_phase::ddv::DdvState;
use dsm_phase::detector::{DetectorMode, IntervalRecord, Thresholds, TraceClassifier};
use dsm_phase::working_set::{WorkingSetDetector, WsSignature};
use dsm_phase::DEFAULT_FOOTPRINT_VECTORS;

use crate::parallel::par_map;
use crate::trace::SystemTrace;

/// Number of BBV thresholds in the 1-D baseline sweep (paper: 200).
pub const BBV_SWEEP_POINTS: usize = 200;
/// BBV × DDS grid dimensions for the BBV+DDV sweep (also 200 points).
pub const DDV_GRID_BBV: usize = 20;
pub const DDV_GRID_DDS: usize = 10;

/// Log-spaced thresholds in `[lo, hi]`.
pub fn log_spaced(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo);
    let (l0, l1) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Classify every processor's records at one threshold and aggregate into
/// one sweep point (mean per-processor identifier CoV and phase count).
fn point_for<F>(trace: &SystemTrace, classify: F, bbv_thr: f64, dds_thr: Option<f64>) -> CurvePoint
where
    F: Fn(&[IntervalRecord]) -> Vec<u32>,
{
    let mut covs = Vec::with_capacity(trace.records.len());
    let mut phase_counts = Vec::with_capacity(trace.records.len());
    for proc_records in &trace.records {
        if proc_records.is_empty() {
            continue;
        }
        let ids = classify(proc_records);
        let pairs: Vec<(u32, f64)> = ids
            .iter()
            .zip(proc_records)
            .map(|(&id, r)| (id, r.cpi()))
            .collect();
        covs.push(identifier_cov(&pairs));
        phase_counts.push(phase_count(&pairs) as f64);
    }
    let n = covs.len().max(1) as f64;
    CurvePoint {
        phases: phase_counts.iter().sum::<f64>() / n,
        cov: covs.iter().sum::<f64>() / n,
        bbv_threshold: bbv_thr,
        dds_threshold: dds_thr,
    }
}

/// Baseline BBV sweep (Figure 2).
pub fn bbv_curve(trace: &SystemTrace) -> CovCurve {
    bbv_curve_with(trace, BBV_SWEEP_POINTS)
}

/// Baseline BBV sweep with an explicit point count.
pub fn bbv_curve_with(trace: &SystemTrace, n_points: usize) -> CovCurve {
    bbv_curve_cap(trace, n_points, DEFAULT_FOOTPRINT_VECTORS)
}

/// Baseline BBV sweep with explicit point count and footprint capacity.
pub fn bbv_curve_cap(trace: &SystemTrace, n_points: usize, capacity: usize) -> CovCurve {
    let points = par_map(log_spaced(n_points, 1e-3, 2.0), |thr| {
        point_for(
            trace,
            |recs| {
                TraceClassifier::classify_proc(
                    recs,
                    DetectorMode::Bbv,
                    Thresholds::bbv_only(thr),
                    capacity,
                )
            },
            thr,
            None,
        )
    });
    CovCurve::new(points)
}

/// BBV+DDV grid sweep (Figure 4).
pub fn bbv_ddv_curve(trace: &SystemTrace) -> CovCurve {
    bbv_ddv_curve_with(trace, DDV_GRID_BBV, DDV_GRID_DDS)
}

/// BBV+DDV sweep with explicit grid dimensions.
pub fn bbv_ddv_curve_with(trace: &SystemTrace, n_bbv: usize, n_dds: usize) -> CovCurve {
    bbv_ddv_curve_cap(trace, n_bbv, n_dds, DEFAULT_FOOTPRINT_VECTORS)
}

/// BBV+DDV sweep with explicit grid dimensions and footprint capacity.
pub fn bbv_ddv_curve_cap(
    trace: &SystemTrace,
    n_bbv: usize,
    n_dds: usize,
    capacity: usize,
) -> CovCurve {
    let points = par_map(threshold_grid(n_bbv, n_dds), |(bbv_thr, dds_thr)| {
        let t = Thresholds {
            bbv: bbv_thr,
            dds: dds_thr,
        };
        point_for(
            trace,
            |recs| TraceClassifier::classify_proc(recs, DetectorMode::BbvDdv, t, capacity),
            bbv_thr,
            Some(dds_thr),
        )
    });
    CovCurve::new(points)
}

/// The BBV × DDS threshold grid, flattened in row-major (BBV-outer) order.
fn threshold_grid(n_bbv: usize, n_dds: usize) -> Vec<(f64, f64)> {
    let dds = log_spaced(n_dds, 5e-3, 1.0);
    log_spaced(n_bbv, 1e-3, 2.0)
        .into_iter()
        .flat_map(|b| dds.iter().map(move |&d| (b, d)))
        .collect()
}

/// Which DDS ablation to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdsAblation {
    /// Full DDS (F·D·C) — the paper's design.
    Full,
    /// No contention term (C ≡ 1): DDS = Σ F·D.
    NoContention,
    /// No distance term (D ≡ 1): DDS = Σ F·C.
    NoDistance,
    /// Frequency only: DDS = Σ F.
    FrequencyOnly,
}

/// Recompute a record's DDS under an ablated formula.
pub fn ablated_dds(rec: &IntervalRecord, dist_row: &[f64], which: DdsAblation) -> f64 {
    let ones_d: Vec<f64> = vec![1.0; rec.fvec.len()];
    let ones_c: Vec<u64> = vec![1; rec.fvec.len()];
    match which {
        DdsAblation::Full => DdvState::dds_of(&rec.fvec, dist_row, &rec.cvec),
        DdsAblation::NoContention => DdvState::dds_of(&rec.fvec, dist_row, &ones_c),
        DdsAblation::NoDistance => DdvState::dds_of(&rec.fvec, &ones_d, &rec.cvec),
        DdsAblation::FrequencyOnly => DdvState::dds_of(&rec.fvec, &ones_d, &ones_c),
    }
}

/// BBV+DDV sweep with an ablated DDS formula (experiments A1/A2 in
/// DESIGN.md).
pub fn ablation_curve(trace: &SystemTrace, which: DdsAblation) -> CovCurve {
    let n = trace.config.n_procs;
    let ddv = DdvState::for_hypercube(n);
    // Ablated DDS values depend only on the records, not on the
    // thresholds — compute them once, outside the threshold fan-out.
    let ablated: Vec<Vec<f64>> = trace
        .records
        .iter()
        .enumerate()
        .map(|(proc, recs)| {
            recs.iter()
                .map(|r| ablated_dds(r, ddv.dist_row(proc), which))
                .collect()
        })
        .collect();
    let points = par_map(
        threshold_grid(DDV_GRID_BBV, DDV_GRID_DDS),
        |(bbv_thr, dds_thr)| {
            let t = Thresholds {
                bbv: bbv_thr,
                dds: dds_thr,
            };
            let mut covs = Vec::new();
            let mut phase_counts = Vec::new();
            for (recs, dds) in trace.records.iter().zip(&ablated) {
                if recs.is_empty() {
                    continue;
                }
                let ids = TraceClassifier::classify_proc_with_dds(
                    recs,
                    dds,
                    t,
                    DEFAULT_FOOTPRINT_VECTORS,
                );
                let pairs: Vec<(u32, f64)> =
                    ids.iter().zip(recs).map(|(&id, r)| (id, r.cpi())).collect();
                covs.push(identifier_cov(&pairs));
                phase_counts.push(phase_count(&pairs) as f64);
            }
            let n = covs.len().max(1) as f64;
            CurvePoint {
                phases: phase_counts.iter().sum::<f64>() / n,
                cov: covs.iter().sum::<f64>() / n,
                bbv_threshold: bbv_thr,
                dds_threshold: Some(dds_thr),
            }
        },
    );
    CovCurve::new(points)
}

/// Vector-DDV extension sweep (X8 in DESIGN.md): classification on the
/// concatenated BBV ‖ distance-weighted frequency vector, swept over the
/// combined Manhattan threshold at a fixed data weight.
pub fn vector_ddv_curve(trace: &SystemTrace, data_weight: f64) -> CovCurve {
    let n = trace.config.n_procs;
    let ddv = DdvState::for_hypercube(n);
    let points = par_map(
        log_spaced(BBV_SWEEP_POINTS, 1e-3, 2.0 * (1.0 + data_weight)),
        |thr| {
            let mut covs = Vec::new();
            let mut phase_counts = Vec::new();
            for (proc, recs) in trace.records.iter().enumerate() {
                if recs.is_empty() {
                    continue;
                }
                let ids = TraceClassifier::classify_proc_vector_ddv(
                    recs,
                    ddv.dist_row(proc),
                    thr,
                    data_weight,
                    DEFAULT_FOOTPRINT_VECTORS,
                );
                let pairs: Vec<(u32, f64)> =
                    ids.iter().zip(recs).map(|(&id, r)| (id, r.cpi())).collect();
                covs.push(identifier_cov(&pairs));
                phase_counts.push(phase_count(&pairs) as f64);
            }
            let n = covs.len().max(1) as f64;
            CurvePoint {
                phases: phase_counts.iter().sum::<f64>() / n,
                cov: covs.iter().sum::<f64>() / n,
                bbv_threshold: thr,
                dds_threshold: None,
            }
        },
    );
    CovCurve::new(points)
}

/// Working-set-signature baseline sweep (Dhodapkar & Smith, experiment A4).
pub fn working_set_curve(trace: &SystemTrace) -> CovCurve {
    let points = par_map(log_spaced(BBV_SWEEP_POINTS, 1e-3, 1.0), |thr| {
        point_for(
            trace,
            |recs| {
                let mut det = WorkingSetDetector::new(DEFAULT_FOOTPRINT_VECTORS);
                recs.iter()
                    .map(|r| det.classify(&WsSignature::from_words(r.ws_sig.clone()), thr))
                    .collect()
            },
            thr,
            None,
        )
    });
    CovCurve::new(points)
}

/// Branch-count baseline sweep (Balasubramonian et al., experiment A4).
pub fn branch_count_curve(trace: &SystemTrace) -> CovCurve {
    let points = par_map(log_spaced(BBV_SWEEP_POINTS, 1e-4, 1.0), |thr| {
        point_for(
            trace,
            |recs| {
                let mut det = BranchCountDetector::new(DEFAULT_FOOTPRINT_VECTORS);
                recs.iter().map(|r| det.classify(r.branches, thr)).collect()
            },
            thr,
            None,
        )
    });
    CovCurve::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::trace::capture;
    use dsm_workloads::App;

    #[test]
    fn log_spacing_properties() {
        let v = log_spaced(10, 1e-3, 2.0);
        assert_eq!(v.len(), 10);
        assert!((v[0] - 1e-3).abs() < 1e-12);
        assert!((v[9] - 2.0).abs() < 1e-9);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn bbv_sweep_spans_single_to_many_phases() {
        let t = capture(ExperimentConfig::test(App::Lu, 2));
        let c = bbv_curve_with(&t, 40);
        assert_eq!(c.points.len(), 40);
        let min_p = c.points.iter().map(|p| p.phases).fold(f64::MAX, f64::min);
        let max_p = c.max_phases();
        assert!(min_p <= 1.5, "loosest threshold ~1 phase, got {min_p}");
        assert!(max_p >= 4.0, "tightest threshold many phases, got {max_p}");
    }

    #[test]
    fn single_phase_end_has_same_cov_for_both_detectors() {
        // Paper: "When distance thresholds are high enough that the entire
        // program falls into a single phase, both detectors naturally
        // achieve the same CoV result."
        let t = capture(ExperimentConfig::test(App::Equake, 2));
        let bbv = bbv_curve_with(&t, 30);
        let ddv = bbv_ddv_curve_with(&t, 8, 4);
        let one = |c: &dsm_analysis::curve::CovCurve| {
            c.points
                .iter()
                .filter(|p| p.phases <= 1.01)
                .map(|p| p.cov)
                .next()
        };
        let (a, b) = (one(&bbv), one(&ddv));
        if let (Some(a), Some(b)) = (a, b) {
            assert!(
                (a - b).abs() < 1e-9,
                "single-phase CoV must agree: {a} vs {b}"
            );
        }
    }

    #[test]
    fn ablated_dds_formulas() {
        use dsm_phase::detector::IntervalRecord;
        let rec = IntervalRecord {
            proc: 0,
            index: 0,
            insns: 100,
            cycles: 100,
            bbv: vec![1.0],
            fvec: vec![2, 3],
            cvec: vec![10, 20],
            dds: 0.0,
            ws_sig: vec![0],
            branches: 1,
        };
        let dist = [1.0, 3.0];
        assert_eq!(
            ablated_dds(&rec, &dist, DdsAblation::Full),
            2.0 * 10.0 + 3.0 * 3.0 * 20.0
        );
        assert_eq!(
            ablated_dds(&rec, &dist, DdsAblation::NoContention),
            2.0 + 9.0
        );
        assert_eq!(
            ablated_dds(&rec, &dist, DdsAblation::NoDistance),
            20.0 + 60.0
        );
        assert_eq!(ablated_dds(&rec, &dist, DdsAblation::FrequencyOnly), 5.0);
    }

    #[test]
    fn baseline_sweeps_produce_points() {
        let t = capture(ExperimentConfig::test(App::Art, 2));
        let ws = working_set_curve(&t);
        let bc = branch_count_curve(&t);
        assert!(!ws.is_empty());
        assert!(!bc.is_empty());
    }
}
