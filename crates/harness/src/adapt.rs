//! The concrete adaptation sweep: the §II tuning protocol driving **real
//! machine reconfiguration** mid-run, per workload and actuator.
//!
//! Where [`crate::adaptive`] scores configurations on an abstract
//! cost-multiplier surface, this sweep runs `dsm_adapt::AdaptSession`
//! against the live simulator: each actuator's locked configuration is an
//! actual page re-homing, DVFS epoch, or core-profile swap, and the cycles
//! reported are the machine's own finish cycle. Three arms per actuator:
//!
//! * **untuned** — the stock machine (also the no-op differential arm);
//! * **tuned** — the closed loop, paying real exploration intervals;
//! * **oracle** — the best single locked configuration, found by running
//!   every configuration to completion (the tuned arm can beat it when
//!   phase-local configurations beat the best global one).
//!
//! The placement study pins the headline claim: phase-guided migration on a
//! first-touch base must beat *both* static placements (first-touch and
//! round-robin page interleaving) on at least one workload. All placement
//! arms run the workload behind the serial-initialization prologue
//! (`dsm_workloads::serial_init`): processor 0 touches every footprint page
//! before the parallel section, so static first-touch homes the entire
//! data set at node 0 — the SPLASH-2 non-contiguous pathology that makes
//! page placement a real decision instead of a solved one. The actuator
//! arms above keep the stock owner-placed stream.

use dsm_adapt::{
    run_locked, Actuator, AdaptConfig, AdaptOutcome, AdaptSession, DvfsActuator, HeteroActuator,
    MigrationActuator, NoopActuator,
};
use dsm_phase::detector::{DetectorGeometry, TraceCollector};
use dsm_sim::config::{DistributionPolicy, SystemConfig};
use dsm_sim::event::ChunkedStream;
use dsm_sim::network::Network;
use dsm_sim::system::System;
use dsm_workloads::{make_serial_init_stream, make_stream, App, Workload};

use crate::experiment::ExperimentConfig;
use crate::json::Json;

type AppSystem = System<ChunkedStream<Box<dyn Workload>>, TraceCollector>;

/// Build the sweep's machine for `config`, optionally overriding the page
/// placement policy (the placement study runs on a first-touch base).
fn build_system(config: ExperimentConfig, dist: Option<DistributionPolicy>) -> AppSystem {
    let mut sys_cfg = config.system_config();
    if let Some(d) = dist {
        sys_cfg.distribution = d;
    }
    let stream = make_stream(config.app, config.n_procs, config.scale);
    let dmat = Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = TraceCollector::new(config.n_procs, dmat, DetectorGeometry::default());
    System::new(sys_cfg, stream, collector)
}

/// Sampling-interval divisor for the placement study. Test-scale runs span
/// only a handful of default-size intervals — too few for the §II protocol
/// to trial four configurations and lock before the run ends. Finer
/// sampling changes nothing for the static arms (interval boundaries are
/// observation points, not machine events) and gives the tuned arm the
/// interval count the paper's full-length runs would have.
pub const PLACEMENT_INTERVAL_DIVISOR: u64 = 8;

/// The placement study's machine: same construction as [`build_system`]
/// but the workload runs behind the serial-initialization prologue, so the
/// page-homing policy actually decides where data lives.
fn build_placement_system(config: ExperimentConfig, dist: DistributionPolicy) -> AppSystem {
    let mut sys_cfg = config.system_config();
    sys_cfg.distribution = dist;
    sys_cfg.interval_insns = (sys_cfg.interval_insns / PLACEMENT_INTERVAL_DIVISOR).max(1);
    let stream = make_serial_init_stream(config.app, config.n_procs, config.scale);
    let dmat = Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = TraceCollector::new(config.n_procs, dmat, DetectorGeometry::default());
    System::new(sys_cfg, stream, collector)
}

fn actuator_by_name(name: &str, sys_cfg: &SystemConfig) -> Box<dyn Actuator> {
    match name {
        "migrate" => Box::new(MigrationActuator),
        "dvfs" => Box::new(DvfsActuator),
        "hetero" => Box::new(HeteroActuator::new(sys_cfg.core)),
        other => panic!("unknown actuator {other}"),
    }
}

/// Actuator families the sweep runs, in report order.
pub const ACTUATORS: [&str; 3] = ["migrate", "dvfs", "hetero"];

/// One actuator's three arms on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuatorOutcome {
    pub actuator: String,
    /// Finish cycle of the tuned (closed-loop) run.
    pub tuned_cycles: u64,
    /// Best single locked configuration's finish cycle (min over configs;
    /// config 0 is the untuned machine).
    pub oracle_cycles: u64,
    pub oracle_config: usize,
    pub tuning_intervals: usize,
    pub degraded_intervals: usize,
    pub retunes: u64,
    pub locked_phases: usize,
    pub migrations: u64,
    pub dvfs_epochs: u64,
    pub core_switches: u64,
}

impl ActuatorOutcome {
    /// Cycles saved by tuning relative to the stock machine (negative when
    /// exploration cost exceeded the win).
    pub fn saved_vs_untuned(&self, untuned: u64) -> i64 {
        untuned as i64 - self.tuned_cycles as i64
    }

    /// Gap to the oracle arm (0 = tuned matched the best locked config;
    /// negative = phase-local configurations beat the best global one).
    pub fn gap_vs_oracle(&self) -> i64 {
        self.tuned_cycles as i64 - self.oracle_cycles as i64
    }
}

/// The placement study on one workload: both static placements vs the
/// tuned migration loop on the first-touch base, all behind the
/// serial-initialization prologue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementComparison {
    pub first_touch_cycles: u64,
    pub interleave_cycles: u64,
    /// Tuned phase-guided migration, first-touch base.
    pub migrated_cycles: u64,
    pub migrations: u64,
}

impl PlacementComparison {
    /// Phase-guided migration beat *both* static placements.
    pub fn migration_wins(&self) -> bool {
        self.migrated_cycles < self.first_touch_cycles
            && self.migrated_cycles < self.interleave_cycles
    }
}

/// One workload's full adaptation report.
#[derive(Debug, Clone, PartialEq)]
pub struct AppAdapt {
    pub app: App,
    pub n_procs: usize,
    /// Stock machine finish cycle (default placement).
    pub untuned_cycles: u64,
    pub actuators: Vec<ActuatorOutcome>,
    pub placement: PlacementComparison,
}

/// The whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptReport {
    pub n_procs: usize,
    pub apps: Vec<AppAdapt>,
}

fn outcome_of(name: &str, tuned: &AdaptOutcome, oracle: (u64, usize)) -> ActuatorOutcome {
    ActuatorOutcome {
        actuator: name.to_string(),
        tuned_cycles: tuned.stats.finish_cycle,
        oracle_cycles: oracle.0,
        oracle_config: oracle.1,
        tuning_intervals: tuned.tuning_intervals(),
        degraded_intervals: tuned.degraded_intervals(),
        retunes: tuned.retunes,
        locked_phases: tuned.locked_phases,
        migrations: tuned.stats.reconfig.migrations,
        dvfs_epochs: tuned.stats.reconfig.dvfs_epochs,
        core_switches: tuned.stats.reconfig.core_switches,
    }
}

fn run_session(
    sys: AppSystem,
    config: ExperimentConfig,
    name: &str,
    adapt_cfg: AdaptConfig,
) -> AdaptOutcome {
    let actuator = actuator_by_name(name, sys.config());
    let out = AdaptSession::new(sys, actuator, adapt_cfg).run();
    assert!(
        out.stats.coherence_transactions_conserved(),
        "{} {}P {name}: coherence transactions not conserved under adaptation",
        config.app.name(),
        config.n_procs
    );
    out
}

fn run_tuned(
    config: ExperimentConfig,
    dist: Option<DistributionPolicy>,
    name: &str,
    adapt_cfg: AdaptConfig,
) -> AdaptOutcome {
    run_session(build_system(config, dist), config, name, adapt_cfg)
}

/// Best locked configuration: run every config to completion, keep the
/// minimum finish cycle (ties to the lower config number).
fn run_oracle(
    config: ExperimentConfig,
    dist: Option<DistributionPolicy>,
    name: &str,
    untuned_cycles: u64,
) -> (u64, usize) {
    let mut best = (untuned_cycles, 0); // config 0 is the stock machine
    let sys_cfg = config.system_config();
    let n_configs = actuator_by_name(name, &sys_cfg).n_configs();
    for c in 1..n_configs {
        let sys = build_system(config, dist);
        let mut actuator = actuator_by_name(name, sys.config());
        let (stats, _) = run_locked(sys, actuator.as_mut(), c);
        assert!(stats.coherence_transactions_conserved());
        if stats.finish_cycle < best.0 {
            best = (stats.finish_cycle, c);
        }
    }
    best
}

/// Run the full adaptation study for one workload.
pub fn adapt_app(app: App, n_procs: usize) -> AppAdapt {
    let config = ExperimentConfig::test(app, n_procs);
    let adapt_cfg = AdaptConfig::default();

    // Stock machine, default placement.
    let (untuned_stats, _) = build_system(config, None).run();
    let untuned_cycles = untuned_stats.finish_cycle;

    let actuators = ACTUATORS
        .iter()
        .map(|&name| {
            let tuned = run_tuned(config, None, name, adapt_cfg);
            let oracle = run_oracle(config, None, name, untuned_cycles);
            outcome_of(name, &tuned, oracle)
        })
        .collect();

    // Placement study: first-touch vs round-robin interleave vs tuned
    // migration on the first-touch base. Every arm runs behind the
    // serial-initialization prologue (same stream, different homing).
    let ft = DistributionPolicy::FirstTouch;
    let (ft_stats, _) = build_placement_system(config, ft).run();
    let (il_stats, _) =
        build_placement_system(config, DistributionPolicy::PageInterleave).run();
    let migrated = run_session(build_placement_system(config, ft), config, "migrate", adapt_cfg);
    let placement = PlacementComparison {
        first_touch_cycles: ft_stats.finish_cycle,
        interleave_cycles: il_stats.finish_cycle,
        migrated_cycles: migrated.stats.finish_cycle,
        migrations: migrated.stats.reconfig.migrations,
    };

    AppAdapt { app, n_procs, untuned_cycles, actuators, placement }
}

/// CI gate: a session with the no-op actuator must be bit-identical to a
/// plain capture — same statistics, same observer stream, inert
/// reconfiguration counters. Panics on divergence.
pub fn assert_noop_differential(app: App, n_procs: usize) {
    let config = ExperimentConfig::test(app, n_procs);
    let (plain_stats, plain_coll) = build_system(config, None).run();
    let out =
        AdaptSession::new(build_system(config, None), Box::new(NoopActuator), AdaptConfig::default())
            .run();
    assert_eq!(
        out.stats,
        plain_stats,
        "{} {n_procs}P: no-op adaptation perturbed machine statistics",
        app.name()
    );
    assert_eq!(
        out.records,
        plain_coll.records,
        "{} {n_procs}P: no-op adaptation perturbed the observer stream",
        app.name()
    );
    assert!(out.stats.reconfig.is_inert());
}

/// Run the sweep over every workload.
pub fn adapt_sweep(n_procs: usize) -> AdaptReport {
    AdaptReport {
        n_procs,
        apps: App::EXTENDED.iter().map(|&app| adapt_app(app, n_procs)).collect(),
    }
}

impl AppAdapt {
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} {}P  untuned {} cycles\n",
            self.app.name(),
            self.n_procs,
            self.untuned_cycles
        );
        for a in &self.actuators {
            s.push_str(&format!(
                "  {:<8} tuned {:>10}  saved {:>8}  oracle {:>10} (cfg {})  gap {:>7}  \
                 tune-ivals {:>3}  locks {:>2}  [mig {} dvfs {} core {}]\n",
                a.actuator,
                a.tuned_cycles,
                a.saved_vs_untuned(self.untuned_cycles),
                a.oracle_cycles,
                a.oracle_config,
                a.gap_vs_oracle(),
                a.tuning_intervals,
                a.locked_phases,
                a.migrations,
                a.dvfs_epochs,
                a.core_switches,
            ));
        }
        let p = &self.placement;
        s.push_str(&format!(
            "  placement (serial-init) first-touch {}  interleave {}  migrated {} ({} moves){}\n",
            p.first_touch_cycles,
            p.interleave_cycles,
            p.migrated_cycles,
            p.migrations,
            if p.migration_wins() { "  << beats both statics" } else { "" },
        ));
        s
    }

    pub fn to_json(&self) -> Json {
        let p = &self.placement;
        Json::obj()
            .field("app", self.app.name())
            .field("n_procs", self.n_procs as u64)
            .field("untuned_cycles", self.untuned_cycles)
            .field(
                "actuators",
                Json::Arr(
                    self.actuators
                        .iter()
                        .map(|a| {
                            Json::obj()
                                .field("actuator", a.actuator.as_str())
                                .field("tuned_cycles", a.tuned_cycles)
                                .field("saved_vs_untuned", a.saved_vs_untuned(self.untuned_cycles))
                                .field("oracle_cycles", a.oracle_cycles)
                                .field("oracle_config", a.oracle_config as u64)
                                .field("gap_vs_oracle", a.gap_vs_oracle())
                                .field("tuning_intervals", a.tuning_intervals as u64)
                                .field("degraded_intervals", a.degraded_intervals as u64)
                                .field("retunes", a.retunes)
                                .field("locked_phases", a.locked_phases as u64)
                                .field("migrations", a.migrations)
                                .field("dvfs_epochs", a.dvfs_epochs)
                                .field("core_switches", a.core_switches)
                        })
                        .collect(),
                ),
            )
            .field(
                "placement",
                Json::obj()
                    .field("base", "serial_init")
                    .field("first_touch_cycles", p.first_touch_cycles)
                    .field("interleave_cycles", p.interleave_cycles)
                    .field("migrated_cycles", p.migrated_cycles)
                    .field("migrations", p.migrations)
                    .field("migration_wins", p.migration_wins()),
            )
    }
}

impl AdaptReport {
    pub fn render(&self) -> String {
        let mut s = String::new();
        for a in &self.apps {
            s.push_str(&a.render());
            s.push('\n');
        }
        let wins = self.apps.iter().filter(|a| a.placement.migration_wins()).count();
        s.push_str(&format!(
            "phase-guided migration beats both static placements on {wins}/{} workloads\n",
            self.apps.len()
        ));
        s
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("experiment", "adapt_sweep")
            .field("n_procs", self.n_procs as u64)
            .field(
                "migration_wins",
                self.apps.iter().filter(|a| a.placement.migration_wins()).count() as u64,
            )
            .field("apps", Json::Arr(self.apps.iter().map(AppAdapt::to_json).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_adapt::NoopActuator;

    #[test]
    fn noop_tuned_run_matches_untuned_capture() {
        let config = ExperimentConfig::test(App::Lu, 2);
        let (plain_stats, plain_coll) = build_system(config, None).run();
        let out =
            AdaptSession::new(build_system(config, None), Box::new(NoopActuator), AdaptConfig::default())
                .run();
        assert_eq!(out.stats, plain_stats);
        assert_eq!(out.records, plain_coll.records);
    }

    #[test]
    fn smoke_app_report_is_consistent() {
        let r = adapt_app(App::Lu, 2);
        assert_eq!(r.actuators.len(), ACTUATORS.len());
        for a in &r.actuators {
            assert!(a.oracle_cycles <= r.untuned_cycles, "{}: oracle includes config 0", a.actuator);
            assert!(a.tuned_cycles > 0);
        }
        // JSON and text render without panicking and carry every actuator.
        let j = r.to_json().to_string();
        for name in ACTUATORS {
            assert!(j.contains(name));
            assert!(r.render().contains(name));
        }
    }
}
