//! Trace capture: run one simulation per experiment configuration and
//! record the per-interval feature snapshots all sweeps classify offline.
//!
//! Classification does not feed back into execution in the paper's
//! evaluation, so a single capture supports arbitrarily many threshold
//! sweeps (see DESIGN.md §2, "online/offline equivalence"). Captures are
//! cached in-memory keyed by configuration so figures and benches never
//! re-simulate; the parallel engine ([`crate::parallel`]) layers a
//! content-addressed on-disk store and a worker pool on top.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dsm_phase::detector::{DetectorGeometry, IntervalRecord, TraceCollector};
use dsm_sim::stats::SystemStats;
use dsm_sim::system::System;
use dsm_workloads::make_stream;

use crate::experiment::ExperimentConfig;

/// A captured run: per-processor interval records plus machine statistics.
#[derive(Debug, Clone)]
pub struct SystemTrace {
    pub config: ExperimentConfig,
    /// Interval records per processor, in interval order.
    pub records: Vec<Vec<IntervalRecord>>,
    pub stats: SystemStats,
    /// Total DDV query traffic (for the overhead report).
    pub ddv_vectors_exchanged: u64,
}

impl SystemTrace {
    /// Total captured intervals across all processors.
    pub fn total_intervals(&self) -> usize {
        self.records.iter().map(|r| r.len()).sum()
    }

    /// Minimum per-processor interval count (sweeps need every processor to
    /// have contributed).
    pub fn min_intervals(&self) -> usize {
        self.records.iter().map(|r| r.len()).min().unwrap_or(0)
    }
}

/// Run the simulation for `config` and capture its trace (uncached).
pub fn capture(config: ExperimentConfig) -> SystemTrace {
    capture_with(config, config.system_config(), DetectorGeometry::default())
}

/// Capture under a fault plan: the same machine and workload as
/// [`capture`], with `plan` driving the simulator's fault-injection layer.
/// [`dsm_sim::config::FaultPlan::none`] yields a run bit-identical to the
/// plain capture (the `fault_equivalence` differential suite asserts this).
pub fn capture_with_faults(
    config: ExperimentConfig,
    plan: dsm_sim::config::FaultPlan,
) -> SystemTrace {
    let mut sys_cfg = config.system_config();
    sys_cfg.fault = plan;
    capture_with(config, sys_cfg, DetectorGeometry::default())
}

/// Capture with an explicit machine configuration and detector geometry
/// (sensitivity studies: interval length, placement policy, accumulator and
/// footprint-table sizes).
pub fn capture_with(
    config: ExperimentConfig,
    sys_cfg: dsm_sim::config::SystemConfig,
    geometry: DetectorGeometry,
) -> SystemTrace {
    assert_eq!(sys_cfg.n_procs, config.n_procs);
    let stream = make_stream(config.app, config.n_procs, config.scale);
    // The DDV distance matrix follows the configured topology (identical to
    // the historical hypercube matrix at the default layout).
    let dist = dsm_sim::network::Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = TraceCollector::new(config.n_procs, dist, geometry);
    let system = System::new(sys_cfg, stream, collector);
    let (stats, collector) = system.run();
    SystemTrace {
        config,
        ddv_vectors_exchanged: collector.ddv().vectors_exchanged(),
        records: collector.records,
        stats,
    }
}

/// A sharded capture: the trace plus the parallel-core counters the scale
/// sweep reports.
#[derive(Debug, Clone)]
pub struct ShardedCapture {
    pub trace: SystemTrace,
    /// Conservative-window counters from the sharded scheduler.
    pub windows: dsm_sim::shard::WindowCounters,
    /// Observer drain/steal counters from the sharded collector.
    pub drains: dsm_phase::DrainCounters,
    /// Effective shard count the run executed under.
    pub shards: usize,
    /// Effective observer worker-thread count (after the host-core budget
    /// guard — see [`crate::parallel::budget_observer_threads`]).
    pub threads: usize,
}

/// Capture under the sharded parallel core: the event loop is partitioned
/// into `shards` shards advanced under a conservative time-window barrier,
/// and observer work is drained by `threads` host worker threads at window
/// boundaries. Bit-identical to [`capture_with_faults`] at any shard and
/// thread count (the `sharded_differential` suite pins this); `threads` is
/// clamped so `jobs() × threads` never oversubscribes the host.
pub fn capture_sharded(
    config: ExperimentConfig,
    plan: dsm_sim::config::FaultPlan,
    shards: usize,
    threads: usize,
) -> ShardedCapture {
    capture_sharded_with(
        config,
        plan,
        shards,
        crate::parallel::budget_observer_threads(threads),
    )
}

/// [`capture_sharded`] without the host-core budget guard: `threads` is
/// used verbatim. The differential suite uses this to exercise thread
/// counts above the host's core budget (bit-identity must hold regardless).
pub fn capture_sharded_with(
    config: ExperimentConfig,
    plan: dsm_sim::config::FaultPlan,
    shards: usize,
    threads: usize,
) -> ShardedCapture {
    let mut sys_cfg = config.system_config();
    sys_cfg.fault = plan;
    let stream = make_stream(config.app, config.n_procs, config.scale);
    let dist = dsm_sim::network::Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = dsm_phase::ShardedCollector::new(
        TraceCollector::new(config.n_procs, dist, DetectorGeometry::default()),
        threads,
    );
    let mut system = System::new(sys_cfg, stream, collector);
    system.enable_sharding(shards);
    system.run_to_interval(u64::MAX);
    let windows = system.window_counters();
    let shards = system.shard_layout().map_or(1, |l| l.n_shards());
    let (stats, mut collector) = system.run_to_end();
    // Force the final drain before reading the counters, so they cover the
    // whole run.
    collector.collector();
    let drains = collector.counters();
    let inner = collector.into_inner();
    ShardedCapture {
        trace: SystemTrace {
            config,
            ddv_vectors_exchanged: inner.ddv().vectors_exchanged(),
            records: inner.records,
            stats,
        },
        windows,
        drains,
        shards,
        threads,
    }
}

/// Process-wide in-memory trace cache, keyed by configuration label.
static CACHE: Mutex<Option<HashMap<String, Arc<SystemTrace>>>> = Mutex::new(None);

pub(crate) fn memory_cache_get(label: &str) -> Option<Arc<SystemTrace>> {
    CACHE
        .lock()
        .unwrap()
        .as_ref()
        .and_then(|m| m.get(label).cloned())
}

pub(crate) fn memory_cache_insert(label: String, trace: Arc<SystemTrace>) {
    CACHE
        .lock()
        .unwrap()
        .get_or_insert_with(HashMap::new)
        .insert(label, trace);
}

/// Drop every in-memory cached trace. Tests use this to force the engine
/// back to the disk store or to fresh simulation.
pub fn clear_memory_cache() {
    *CACHE.lock().unwrap() = None;
}

/// Capture with caching: the second request for the same configuration is
/// free. Used by figures and benches.
pub fn capture_cached(config: ExperimentConfig) -> Arc<SystemTrace> {
    let key = config.label();
    if let Some(t) = memory_cache_get(&key) {
        return t;
    }
    let trace = Arc::new(capture(config));
    memory_cache_insert(key, trace.clone());
    trace
}

/// Capture many configurations in parallel and populate the cache. Thin
/// wrapper over [`crate::parallel::capture_matrix`] for callers that do not
/// need the run report.
pub fn capture_all_cached(configs: &[ExperimentConfig]) {
    let _ = crate::parallel::capture_matrix("capture_all_cached", configs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_workloads::App;

    #[test]
    fn capture_produces_intervals_for_every_proc() {
        let t = capture(ExperimentConfig::test(App::Lu, 2));
        assert_eq!(t.records.len(), 2);
        assert!(t.min_intervals() >= 3, "got {}", t.min_intervals());
        // Records carry real features.
        let r = &t.records[0][0];
        assert!(r.insns > 0);
        assert!(r.cycles > 0);
        assert_eq!(r.fvec.len(), 2);
        assert!((r.bbv.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture(ExperimentConfig::test(App::Equake, 2));
        let b = capture(ExperimentConfig::test(App::Equake, 2));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.records[0].len(), b.records[0].len());
        assert_eq!(a.records[0][0], b.records[0][0]);
    }

    #[test]
    fn cached_capture_returns_same_arc() {
        let cfg = ExperimentConfig::test(App::Art, 2);
        let a = capture_cached(cfg);
        let b = capture_cached(cfg);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sharded_capture_matches_serial() {
        let cfg = ExperimentConfig::test(App::Lu, 4);
        let serial = capture(cfg);
        let sharded = capture_sharded_with(cfg, dsm_sim::config::FaultPlan::none(), 2, 2);
        assert_eq!(sharded.trace.stats, serial.stats);
        assert_eq!(sharded.trace.records, serial.records);
        assert_eq!(
            sharded.trace.ddv_vectors_exchanged,
            serial.ddv_vectors_exchanged
        );
        assert_eq!(sharded.shards, 2);
        assert_eq!(sharded.threads, 2);
        assert!(sharded.windows.windows > 0);
        assert!(sharded.windows.lookahead >= 1);
        assert!(sharded.drains.drains > 0);
    }

    #[test]
    fn parallel_capture_populates_cache() {
        let cfgs = vec![
            ExperimentConfig::test(App::Fmm, 2),
            ExperimentConfig::test(App::Fmm, 4),
        ];
        capture_all_cached(&cfgs);
        for c in cfgs {
            let t = capture_cached(c);
            assert!(t.total_intervals() > 0);
        }
    }
}
