//! The §II phase-adaptive tuning loop: "a reconfiguration module tunes the
//! system based on this prediction, by trying different hardware
//! configurations at different intervals that belong to the same phase.
//! Once tuning is complete, the best configuration is selected, and
//! subsequently applied whenever that phase is predicted."
//!
//! This module closes the loop the paper motivates but does not simulate:
//! it takes a *classified* interval stream (phase id + base cycles per
//! interval) and a space of hardware configurations with phase-dependent
//! performance, runs the trial-and-error tuning protocol, and reports the
//! cost against an oracle and an untuned baseline. Two effects emerge,
//! both quantified by the paper's metrics:
//!
//! * **more phases → more tuning intervals** (each new phase pays
//!   `n_configs × trials_per_config` exploratory intervals);
//! * **heterogeneous phases → bad locked configurations** (a phase whose
//!   intervals differ wildly — high CoV — locks a config measured on
//!   unrepresentative intervals and mispredicts the rest).

use dsm_adapt::{Decision, DecisionKind};
use dsm_sim::util::{splitmix64, FxHashMap};
use serde::{Deserialize, Serialize};

/// Tuning-protocol knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningPolicy {
    /// Number of hardware configurations to explore per phase.
    pub n_configs: usize,
    /// Intervals each configuration is tried for.
    pub trials_per_config: usize,
}

impl Default for TuningPolicy {
    fn default() -> Self {
        Self {
            n_configs: 4,
            trials_per_config: 1,
        }
    }
}

/// The hidden performance surface: multiplier applied to an interval's base
/// cycles when configuration `c` runs during phase-ground `g`.
///
/// `g` is a *behavioural* key (we use the interval's CPI bucket), not the
/// detector's phase id — the detector only controls *when to re-tune* and
/// *which intervals share a locked config*; whether that config actually
/// fits is decided by the interval's real behaviour.
pub fn config_multiplier(behaviour: u64, config: usize) -> f64 {
    // Deterministic surface: each behaviour bucket has one best config
    // (multiplier 0.85) and the rest spread up to 1.30.
    let r = splitmix64(behaviour.wrapping_mul(0x9e37) ^ config as u64) % 1000;
    let best = (splitmix64(behaviour) % 4) as usize == config % 4;
    if best {
        0.85
    } else {
        1.0 + 0.3 * (r as f64 / 1000.0)
    }
}

/// Behaviour bucket of an interval (CPI quantized to half-integers).
pub fn behaviour_of(cpi: f64) -> u64 {
    (cpi * 2.0).round().max(0.0) as u64
}

/// Outcome of running the tuning protocol over one classified stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    pub total_intervals: usize,
    /// Intervals spent in trial-and-error exploration.
    pub tuning_intervals: usize,
    /// Total cycles with phase-guided tuning.
    pub tuned_cycles: f64,
    /// Total cycles if every interval ran its true best configuration.
    pub oracle_cycles: f64,
    /// Total cycles under the default configuration (no tuning).
    pub untuned_cycles: f64,
}

impl TuningOutcome {
    /// Fraction of intervals spent tuning (the CoV-curve x-axis variant).
    pub fn tuning_fraction(&self) -> f64 {
        if self.total_intervals == 0 {
            0.0
        } else {
            self.tuning_intervals as f64 / self.total_intervals as f64
        }
    }

    /// Tuned cost normalized to the oracle (1.0 = perfect).
    pub fn vs_oracle(&self) -> f64 {
        if self.oracle_cycles == 0.0 {
            1.0
        } else {
            self.tuned_cycles / self.oracle_cycles
        }
    }

    /// Speedup over never tuning (>1.0 means tuning helped).
    pub fn speedup_vs_untuned(&self) -> f64 {
        if self.tuned_cycles == 0.0 {
            1.0
        } else {
            self.untuned_cycles / self.tuned_cycles
        }
    }
}

#[derive(Debug, Clone)]
enum PhaseState {
    /// Trying configs; accumulated (config, trials, total normalized cost).
    Tuning {
        config: usize,
        trials_left: usize,
        best: (usize, f64),
        acc: f64,
        acc_n: usize,
    },
    Locked(usize),
}

/// One classified interval as the abstract pipeline consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningInterval {
    /// Global interval index (decision-log coordinate).
    pub index: u64,
    pub phase: u32,
    pub cpi: f64,
    pub insns: u64,
    /// Classification fell back past the DDS staleness bound. Degraded
    /// intervals still execute (their cycles are charged under whatever
    /// configuration is in force) but are **never spent as tuning
    /// trials**: a measurement the detector itself distrusts must not
    /// inform the locked choice.
    pub degraded: bool,
}

/// Run the §II tuning protocol over a classified interval stream and
/// return the outcome plus the decision log. This is the canonical entry
/// point; [`run_tuning`] is the degradation-free wrapper.
///
/// The decision log uses the shared [`Decision`] type, so it is directly
/// comparable (via [`Decision::key`]) with the one a concrete
/// `dsm_adapt::AdaptSession` emits on the same classified stream — the
/// transition structure is positional, so the two pipelines must agree
/// even though they score trials differently.
pub fn run_tuning_stream(
    stream: &[TuningInterval],
    policy: TuningPolicy,
) -> (TuningOutcome, Vec<Decision>) {
    assert!(policy.n_configs >= 1 && policy.trials_per_config >= 1);
    let mut states: FxHashMap<u32, PhaseState> = FxHashMap::default();
    let mut decisions = Vec::new();
    let mut out = TuningOutcome {
        total_intervals: stream.len(),
        tuning_intervals: 0,
        tuned_cycles: 0.0,
        oracle_cycles: 0.0,
        untuned_cycles: 0.0,
    };

    for &TuningInterval { index, phase, cpi, insns, degraded } in stream {
        let base = cpi * insns as f64;
        let behaviour = behaviour_of(cpi);
        // Oracle: best config for this interval's true behaviour.
        let oracle = (0..policy.n_configs)
            .map(|c| config_multiplier(behaviour, c))
            .fold(f64::INFINITY, f64::min);
        out.oracle_cycles += base * oracle;
        out.untuned_cycles += base * config_multiplier(behaviour, 0);

        if degraded {
            // The interval ran under whatever configuration is in force
            // (an unseen phase runs the default), but the tuning state is
            // untouched: no trial consumed, no accumulator update, no
            // decision, no phase entry created.
            let current = match states.get(&phase) {
                Some(PhaseState::Locked(c)) => *c,
                Some(PhaseState::Tuning { config, .. }) => *config,
                None => 0,
            };
            out.tuned_cycles += base * config_multiplier(behaviour, current);
            continue;
        }

        let state = states.entry(phase).or_insert(PhaseState::Tuning {
            config: 0,
            trials_left: policy.trials_per_config,
            best: (0, f64::INFINITY),
            acc: 0.0,
            acc_n: 0,
        });
        match state {
            PhaseState::Tuning {
                config,
                trials_left,
                best,
                acc,
                acc_n,
            } => {
                out.tuning_intervals += 1;
                decisions.push(Decision {
                    interval: index,
                    phase,
                    kind: DecisionKind::Trial { config: *config },
                });
                let m = config_multiplier(behaviour, *config);
                out.tuned_cycles += base * m;
                // Measure normalized cost (per-instruction) of this config.
                *acc += m * cpi;
                *acc_n += 1;
                *trials_left -= 1;
                if *trials_left == 0 {
                    let mean = *acc / *acc_n as f64;
                    if mean < best.1 {
                        *best = (*config, mean);
                    }
                    if *config + 1 < policy.n_configs {
                        *config += 1;
                        *trials_left = policy.trials_per_config;
                        *acc = 0.0;
                        *acc_n = 0;
                    } else {
                        let locked = best.0;
                        *state = PhaseState::Locked(locked);
                        decisions.push(Decision {
                            interval: index,
                            phase,
                            kind: DecisionKind::Lock { config: locked },
                        });
                    }
                }
            }
            PhaseState::Locked(c) => {
                out.tuned_cycles += base * config_multiplier(behaviour, *c);
            }
        }
    }
    (out, decisions)
}

/// Run the §II tuning protocol over a fully-reliable classified interval
/// stream (`(phase_id, cpi, insns)` per interval in order).
pub fn run_tuning(stream: &[(u32, f64, u64)], policy: TuningPolicy) -> TuningOutcome {
    let stream: Vec<TuningInterval> = stream
        .iter()
        .enumerate()
        .map(|(i, &(phase, cpi, insns))| TuningInterval {
            index: i as u64,
            phase,
            cpi,
            insns,
            degraded: false,
        })
        .collect();
    run_tuning_stream(&stream, policy).0
}

/// Run the full §II pipeline: detector output feeds a *phase predictor*,
/// and each interval runs the configuration locked for the **predicted**
/// phase (the paper: "a reconfiguration module tunes the system based on
/// this prediction"). A mispredicted phase executes under the wrong
/// phase's configuration — so predictor accuracy now costs real cycles,
/// closing the loop the paper's conclusions call for.
pub fn run_tuning_predicted(
    stream: &[(u32, f64, u64)],
    policy: TuningPolicy,
    predictor: &mut dyn dsm_phase::predictor::PhasePredictor,
) -> TuningOutcome {
    assert!(policy.n_configs >= 1 && policy.trials_per_config >= 1);
    let mut states: FxHashMap<u32, PhaseState> = FxHashMap::default();
    let mut out = TuningOutcome {
        total_intervals: stream.len(),
        tuning_intervals: 0,
        tuned_cycles: 0.0,
        oracle_cycles: 0.0,
        untuned_cycles: 0.0,
    };

    for &(phase, cpi, insns) in stream {
        let base = cpi * insns as f64;
        let behaviour = behaviour_of(cpi);
        let oracle = (0..policy.n_configs)
            .map(|c| config_multiplier(behaviour, c))
            .fold(f64::INFINITY, f64::min);
        out.oracle_cycles += base * oracle;
        out.untuned_cycles += base * config_multiplier(behaviour, 0);

        // The hardware applies the configuration of the *predicted* phase
        // for this interval (default config when nothing is known yet).
        let predicted = predictor.predict().unwrap_or(phase);
        let applied_config = match states.get(&predicted) {
            Some(PhaseState::Locked(c)) => Some(*c),
            Some(PhaseState::Tuning { config, .. }) => Some(*config),
            None => None,
        };

        // Tuning progress is still tracked against the *actual* phase once
        // the interval completes and is classified.
        let state = states.entry(phase).or_insert(PhaseState::Tuning {
            config: 0,
            trials_left: policy.trials_per_config,
            best: (0, f64::INFINITY),
            acc: 0.0,
            acc_n: 0,
        });
        match state {
            PhaseState::Tuning {
                config,
                trials_left,
                best,
                acc,
                acc_n,
            } => {
                out.tuning_intervals += 1;
                let run_config = applied_config.unwrap_or(*config);
                let m = config_multiplier(behaviour, run_config);
                out.tuned_cycles += base * m;
                // Only measurements taken under the phase's own trial
                // config inform its selection.
                if run_config == *config {
                    *acc += m * cpi;
                    *acc_n += 1;
                    *trials_left -= 1;
                    if *trials_left == 0 {
                        let mean = *acc / (*acc_n).max(1) as f64;
                        if mean < best.1 {
                            *best = (*config, mean);
                        }
                        if *config + 1 < policy.n_configs {
                            *config += 1;
                            *trials_left = policy.trials_per_config;
                            *acc = 0.0;
                            *acc_n = 0;
                        } else {
                            *state = PhaseState::Locked(best.0);
                        }
                    }
                }
            }
            PhaseState::Locked(c) => {
                let run_config = applied_config.unwrap_or(*c);
                out.tuned_cycles += base * config_multiplier(behaviour, run_config);
            }
        }
        predictor.observe(phase);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_phase::predictor::{LastPhasePredictor, RlePredictor};

    fn constant_stream(phase: u32, cpi: f64, n: usize) -> Vec<(u32, f64, u64)> {
        vec![(phase, cpi, 1000); n]
    }

    #[test]
    fn homogeneous_phase_converges_to_oracle() {
        let stream = constant_stream(0, 1.0, 200);
        let out = run_tuning(&stream, TuningPolicy::default());
        // After 4 tuning intervals, every interval runs the best config.
        assert_eq!(out.tuning_intervals, 4);
        assert!(
            out.vs_oracle() < 1.02,
            "homogeneous phase must almost reach oracle, got {}",
            out.vs_oracle()
        );
    }

    #[test]
    fn more_phases_mean_more_tuning() {
        let few: Vec<_> = (0..200).map(|i| ((i / 100) as u32, 1.0, 1000u64)).collect();
        let many: Vec<_> = (0..200).map(|i| ((i % 50) as u32, 1.0, 1000u64)).collect();
        let pol = TuningPolicy::default();
        let a = run_tuning(&few, pol);
        let b = run_tuning(&many, pol);
        assert!(b.tuning_intervals > a.tuning_intervals);
        assert!(b.tuning_fraction() > a.tuning_fraction());
    }

    #[test]
    fn heterogeneous_phase_locks_a_worse_config() {
        // One detector phase containing two very different behaviours (the
        // high-CoV failure mode) vs two clean phases.
        let mixed: Vec<(u32, f64, u64)> = (0..400)
            .map(|i| (0u32, if i % 2 == 0 { 0.5 } else { 4.0 }, 1000u64))
            .collect();
        let split: Vec<(u32, f64, u64)> = (0..400)
            .map(|i| {
                if i % 2 == 0 {
                    (0u32, 0.5, 1000u64)
                } else {
                    (1u32, 4.0, 1000u64)
                }
            })
            .collect();
        let pol = TuningPolicy::default();
        let a = run_tuning(&mixed, pol);
        let b = run_tuning(&split, pol);
        assert!(
            b.vs_oracle() <= a.vs_oracle(),
            "splitting heterogeneous behaviour must not hurt: {} vs {}",
            b.vs_oracle(),
            a.vs_oracle()
        );
    }

    #[test]
    fn tuning_beats_never_tuning_on_long_runs() {
        let stream = constant_stream(0, 2.0, 500);
        let out = run_tuning(&stream, TuningPolicy::default());
        // Unless config 0 happens to be best for this behaviour, tuning
        // wins; in either case it must not lose by more than the trial cost.
        assert!(out.speedup_vs_untuned() > 0.95);
    }

    #[test]
    fn empty_stream() {
        let out = run_tuning(&[], TuningPolicy::default());
        assert_eq!(out.total_intervals, 0);
        assert_eq!(out.tuning_fraction(), 0.0);
        assert_eq!(out.vs_oracle(), 1.0);
    }

    #[test]
    fn predicted_tuning_matches_reactive_on_constant_stream() {
        // With one phase, prediction is trivially right and the two
        // pipelines coincide (after warm-up effects smaller than a trial).
        let stream = constant_stream(0, 1.5, 300);
        let pol = TuningPolicy::default();
        let reactive = run_tuning(&stream, pol);
        let mut pred = LastPhasePredictor::new();
        let predicted = run_tuning_predicted(&stream, pol, &mut pred);
        let rel = (predicted.tuned_cycles - reactive.tuned_cycles).abs() / reactive.tuned_cycles;
        assert!(
            rel < 0.02,
            "constant stream: pipelines must agree, rel {rel}"
        );
    }

    #[test]
    fn better_predictor_costs_fewer_cycles_on_periodic_phases() {
        // Periodic phases with different behaviours: the RLE predictor
        // anticipates transitions (right config on the first interval of
        // each run); last-phase is always one interval late.
        let mut stream = Vec::new();
        for _ in 0..60 {
            stream.extend(constant_stream(0, 0.5, 5));
            stream.extend(constant_stream(1, 4.0, 3));
        }
        let pol = TuningPolicy::default();
        let mut last = LastPhasePredictor::new();
        let with_last = run_tuning_predicted(&stream, pol, &mut last);
        let mut rle = RlePredictor::new(64);
        let with_rle = run_tuning_predicted(&stream, pol, &mut rle);
        assert!(
            with_rle.tuned_cycles <= with_last.tuned_cycles,
            "RLE prediction must not cost more: {} vs {}",
            with_rle.tuned_cycles,
            with_last.tuned_cycles
        );
    }

    #[test]
    fn predicted_tuning_never_beats_oracle() {
        let mut stream = Vec::new();
        for i in 0..200u32 {
            stream.push((i % 5, 0.5 + (i % 7) as f64, 1000u64));
        }
        let mut pred = RlePredictor::new(16);
        let out = run_tuning_predicted(&stream, TuningPolicy::default(), &mut pred);
        assert!(out.tuned_cycles >= out.oracle_cycles - 1e-6);
        assert_eq!(out.total_intervals, 200);
    }

    #[test]
    fn behaviour_bins_are_half_integer_cpi() {
        // behaviour_of quantizes CPI to half-integers: bucket = round(2·cpi).
        assert_eq!(behaviour_of(0.0), 0);
        assert_eq!(behaviour_of(0.24), 0);
        assert_eq!(behaviour_of(0.25), 1); // round-half-away-from-zero
        assert_eq!(behaviour_of(0.5), 1);
        assert_eq!(behaviour_of(0.74), 1);
        assert_eq!(behaviour_of(0.75), 2);
        assert_eq!(behaviour_of(1.0), 2);
        assert_eq!(behaviour_of(4.0), 8);
        // Negative CPI cannot occur, but the bucket clamps instead of
        // wrapping through the u64 cast.
        assert_eq!(behaviour_of(-3.0), 0);
    }

    #[test]
    fn vs_oracle_with_zero_cycle_oracle_is_neutral() {
        let out = TuningOutcome {
            total_intervals: 0,
            tuning_intervals: 0,
            tuned_cycles: 123.0,
            oracle_cycles: 0.0,
            untuned_cycles: 0.0,
        };
        assert_eq!(out.vs_oracle(), 1.0);
        assert_eq!(out.speedup_vs_untuned(), 0.0);
    }

    #[test]
    fn tuning_interval_count_scales_with_policy() {
        // One phase pays exactly n_configs × trials_per_config exploratory
        // intervals before locking.
        let stream = constant_stream(0, 1.0, 100);
        let pol = TuningPolicy {
            n_configs: 3,
            trials_per_config: 2,
        };
        let out = run_tuning(&stream, pol);
        assert_eq!(out.tuning_intervals, 6);
        assert_eq!(out.total_intervals, 100);
    }

    #[test]
    fn predicted_tuning_on_empty_stream_is_neutral() {
        let mut pred = LastPhasePredictor::new();
        let out = run_tuning_predicted(&[], TuningPolicy::default(), &mut pred);
        assert_eq!(out.total_intervals, 0);
        assert_eq!(out.tuning_intervals, 0);
        assert_eq!(out.vs_oracle(), 1.0);
    }

    #[test]
    fn degraded_intervals_are_never_spent_as_trials() {
        // Regression: a degraded interval arriving mid-tuning used to be
        // consumed as a trial measurement. It must be charged (it ran) but
        // leave the tuning state untouched: same trial/lock structure as
        // the stream with the degraded interval removed.
        let pol = TuningPolicy::default();
        let mk = |degraded_at: Option<usize>| -> Vec<TuningInterval> {
            (0..20)
                .map(|i| TuningInterval {
                    index: i as u64,
                    phase: 0,
                    cpi: 1.0,
                    insns: 1000,
                    degraded: Some(i) == degraded_at,
                })
                .collect()
        };
        let (clean_out, clean_dec) = run_tuning_stream(&mk(None), pol);
        let (deg_out, deg_dec) = run_tuning_stream(&mk(Some(2)), pol);
        assert_eq!(clean_out.tuning_intervals, 4);
        assert_eq!(deg_out.tuning_intervals, 4, "degraded interval consumed a trial");
        // Trial configs in order are identical; only the interval indices
        // shift by the skip.
        let configs = |d: &[Decision]| {
            d.iter()
                .map(|d| match d.kind {
                    DecisionKind::Trial { config } => (0u8, config),
                    DecisionKind::Lock { config } => (1, config),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(configs(&clean_dec), configs(&deg_dec));
        // All 20 intervals were charged in both runs.
        assert_eq!(deg_out.total_intervals, clean_out.total_intervals);
        assert!(deg_out.tuned_cycles > 0.0);
        // A degraded interval before any tuning state exists runs the
        // default config and creates no phase entry.
        let lead: Vec<TuningInterval> = std::iter::once(TuningInterval {
            index: 0,
            phase: 9,
            cpi: 1.0,
            insns: 1000,
            degraded: true,
        })
        .collect();
        let (out, dec) = run_tuning_stream(&lead, pol);
        assert_eq!(out.tuning_intervals, 0);
        assert!(dec.is_empty());
        let untuned_only = out.untuned_cycles;
        assert_eq!(out.tuned_cycles, untuned_only, "unseen phase must run the default config");
    }

    #[test]
    fn decision_log_matches_protocol_shape() {
        // One phase, default policy: 4 trials then a lock at the same
        // interval as the last trial — the exact shape dsm_adapt::Protocol
        // emits, so the differential suite can compare keys 1:1.
        let stream: Vec<TuningInterval> = (0..6)
            .map(|i| TuningInterval { index: i as u64, phase: 0, cpi: 1.0, insns: 100, degraded: false })
            .collect();
        let (_, dec) = run_tuning_stream(&stream, TuningPolicy::default());
        assert_eq!(dec.len(), 5);
        assert_eq!(dec[3].key().0, dec[4].key().0, "lock shares the last trial's interval");
        assert!(matches!(dec[4].kind, DecisionKind::Lock { .. }));
    }

    #[test]
    fn multiplier_surface_is_deterministic_and_bounded() {
        for b in 0..20u64 {
            let mut best = f64::INFINITY;
            for c in 0..4 {
                let m = config_multiplier(b, c);
                assert!((0.8..=1.3).contains(&m));
                assert_eq!(m, config_multiplier(b, c));
                best = best.min(m);
            }
            assert_eq!(best, 0.85, "every behaviour has a best config");
        }
    }
}
