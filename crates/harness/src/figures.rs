//! Figure regeneration: the paper's Figure 2 (baseline BBV CoV curves at
//! 2/8/32 processors) and Figure 4 (BBV vs BBV+DDV at 8/32 processors),
//! plus the headline comparisons quoted in §III-A and §IV.

use dsm_analysis::curve::CovCurve;
use dsm_analysis::plot::AsciiChart;
use dsm_workloads::{App, Scale};
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentConfig;
use crate::json::Json;
use crate::parallel::{capture_matrix, RunReport};
use crate::sweep::{bbv_curve, bbv_ddv_curve};
use crate::trace::capture_cached;

/// Maximum phase count plotted (the paper's x-axes run to 25).
pub const MAX_PHASES: usize = 25;

/// One panel: an application at one or more system sizes / detectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Panel {
    pub app: App,
    pub n_procs: Option<usize>,
    /// (curve label, curve) pairs.
    pub curves: Vec<(String, CovCurve)>,
}

/// A multi-panel figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    pub name: String,
    pub panels: Vec<Panel>,
}

impl Figure {
    /// Render every panel as an ASCII log-y chart of the lower envelopes.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("==== {} ====\n\n", self.name));
        for panel in &self.panels {
            let title = match panel.n_procs {
                Some(p) => format!("{} CoV Curves ({}P)", panel.app.name(), p),
                None => format!("{} CoV Curves", panel.app.name()),
            };
            let mut chart = AsciiChart::new(title, 60, 14)
                .log_y()
                .labels("# of Phases", "Identifier CoV of CPI");
            let symbols = ['o', '+', 'x', '*', '#'];
            for (i, (label, curve)) in panel.curves.iter().enumerate() {
                let pts: Vec<(f64, f64)> = curve
                    .lower_envelope(MAX_PHASES)
                    .into_iter()
                    .map(|(k, c)| (k as f64, c.max(1e-4)))
                    .collect();
                chart.series(label.clone(), symbols[i % symbols.len()], pts);
            }
            out.push_str(&chart.render());
            out.push('\n');
        }
        out
    }

    /// Long-format CSV rows: app, procs, detector, phases, cov.
    pub fn csv(&self) -> (Vec<&'static str>, Vec<Vec<String>>) {
        let headers = vec!["app", "n_procs", "detector", "phases", "cov"];
        let mut rows = Vec::new();
        for panel in &self.panels {
            for (label, curve) in &panel.curves {
                for (k, cov) in curve.lower_envelope(MAX_PHASES) {
                    rows.push(vec![
                        panel.app.name().to_string(),
                        panel
                            .n_procs
                            .map(|p| p.to_string())
                            .unwrap_or_else(|| label.clone()),
                        label.clone(),
                        k.to_string(),
                        format!("{cov:.6}"),
                    ]);
                }
            }
        }
        (headers, rows)
    }

    /// Deterministic JSON of every panel's full curves (every sweep point,
    /// not just the envelope). Golden-regression fixtures and the
    /// serial-vs-parallel determinism test diff these bytes.
    pub fn to_json(&self) -> Json {
        let panels: Vec<Json> = self
            .panels
            .iter()
            .map(|panel| {
                let curves: Vec<Json> = panel
                    .curves
                    .iter()
                    .map(|(label, curve)| {
                        let points: Vec<Json> = curve
                            .points
                            .iter()
                            .map(|p| {
                                Json::obj()
                                    .field("phases", p.phases)
                                    .field("cov", p.cov)
                                    .field("bbv_threshold", p.bbv_threshold)
                                    .field("dds_threshold", p.dds_threshold)
                            })
                            .collect();
                        Json::obj()
                            .field("label", label.as_str())
                            .field("points", Json::Arr(points))
                    })
                    .collect();
                Json::obj()
                    .field("app", panel.app.name())
                    .field("n_procs", panel.n_procs)
                    .field("curves", Json::Arr(curves))
            })
            .collect();
        Json::obj()
            .field("name", self.name.as_str())
            .field("panels", Json::Arr(panels))
    }
}

/// Figure 2: baseline BBV CoV curves for every application at 2, 8, and 32
/// processors (one panel per application, one curve per system size).
pub fn figure2(scale: Scale) -> Figure {
    figure2_with_report(scale).0
}

/// [`figure2`] plus the engine's [`RunReport`] (cache traffic, wall time).
pub fn figure2_with_report(scale: Scale) -> (Figure, RunReport) {
    let sizes = [2usize, 8, 32];
    let configs: Vec<ExperimentConfig> = App::ALL
        .iter()
        .flat_map(|&app| sizes.iter().map(move |&p| config_at(app, p, scale)))
        .collect();
    let (_, report) = capture_matrix("fig2", &configs);

    let panels = App::ALL
        .iter()
        .map(|&app| Panel {
            app,
            n_procs: None,
            curves: sizes
                .iter()
                .map(|&p| {
                    let trace = capture_cached(config_at(app, p, scale));
                    (format!("{p}P"), bbv_curve(&trace))
                })
                .collect(),
        })
        .collect();
    (
        Figure {
            name: "Figure 2: Baseline BBV results".into(),
            panels,
        },
        report,
    )
}

/// Figure 4: BBV vs BBV+DDV curves for every application at 8 and 32
/// processors (one panel per application × size).
pub fn figure4(scale: Scale) -> Figure {
    figure4_with_report(scale).0
}

/// [`figure4`] plus the engine's [`RunReport`] (cache traffic, wall time).
pub fn figure4_with_report(scale: Scale) -> (Figure, RunReport) {
    let sizes = [8usize, 32];
    let configs: Vec<ExperimentConfig> = App::ALL
        .iter()
        .flat_map(|&app| sizes.iter().map(move |&p| config_at(app, p, scale)))
        .collect();
    let (_, report) = capture_matrix("fig4", &configs);

    let mut panels = Vec::new();
    for &p in &sizes {
        for &app in &App::ALL {
            let trace = capture_cached(config_at(app, p, scale));
            panels.push(Panel {
                app,
                n_procs: Some(p),
                curves: vec![
                    ("BBV".to_string(), bbv_curve(&trace)),
                    ("BBV+DDV".to_string(), bbv_ddv_curve(&trace)),
                ],
            });
        }
    }
    (
        Figure {
            name: "Figure 4: BBV+DDV results".into(),
            panels,
        },
        report,
    )
}

/// Experiment configuration for (app, size) at a scale.
pub fn config_at(app: App, p: usize, scale: Scale) -> ExperimentConfig {
    match scale {
        Scale::Paper => ExperimentConfig::paper(app, p),
        Scale::Scaled => ExperimentConfig::scaled(app, p),
        Scale::Test => ExperimentConfig::test(app, p),
    }
}

/// The paper's §III-A LU headline: CoV at a fixed (7-phase) budget for
/// 2/8/32 processors, and the phase count needed for 20 % CoV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LuHeadline {
    pub cov_at_7_phases: Vec<(usize, Option<f64>)>,
    pub phases_for_20pct: Vec<(usize, Option<f64>)>,
}

pub fn headline_lu(scale: Scale) -> LuHeadline {
    let sizes = [2usize, 8, 32];
    let mut cov7 = Vec::new();
    let mut p20 = Vec::new();
    for &p in &sizes {
        let trace = capture_cached(config_at(App::Lu, p, scale));
        let c = bbv_curve(&trace);
        cov7.push((p, c.cov_at_phases(7.0)));
        p20.push((p, c.phases_at_cov(0.20)));
    }
    LuHeadline {
        cov_at_7_phases: cov7,
        phases_for_20pct: p20,
    }
}

/// The paper's §IV FMM headline: at 32P, CoV of both detectors at a fixed
/// phase budget, and the phase count each needs to reach the BBV's CoV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FmmHeadline {
    pub n_procs: usize,
    pub budget: f64,
    pub bbv_cov_at_budget: Option<f64>,
    pub ddv_cov_at_budget: Option<f64>,
    /// Phases each detector needs to reach the BBV's budget CoV.
    pub bbv_phases_at_target: Option<f64>,
    pub ddv_phases_at_target: Option<f64>,
}

pub fn headline_fmm(scale: Scale, n_procs: usize, budget: f64) -> FmmHeadline {
    let trace = capture_cached(config_at(App::Fmm, n_procs, scale));
    let bbv = bbv_curve(&trace);
    let ddv = bbv_ddv_curve(&trace);
    let bbv_cov = bbv.cov_at_phases(budget);
    let target = bbv_cov.unwrap_or(f64::INFINITY);
    FmmHeadline {
        n_procs,
        budget,
        bbv_cov_at_budget: bbv_cov,
        ddv_cov_at_budget: ddv.cov_at_phases(budget),
        bbv_phases_at_target: bbv.phases_at_cov(target),
        ddv_phases_at_target: ddv.phases_at_cov(target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_test_scale_has_all_panels() {
        let f = figure2(Scale::Test);
        assert_eq!(f.panels.len(), 4);
        for p in &f.panels {
            assert_eq!(p.curves.len(), 3);
            for (_, c) in &p.curves {
                assert!(!c.is_empty());
            }
        }
        let ascii = f.render_ascii();
        assert!(ascii.contains("LU CoV Curves"));
        assert!(ascii.contains("Equake CoV Curves"));
        let (h, rows) = f.csv();
        assert_eq!(h.len(), 5);
        assert!(!rows.is_empty());
    }

    #[test]
    fn figure4_test_scale_has_all_panels() {
        let f = figure4(Scale::Test);
        assert_eq!(f.panels.len(), 8);
        for p in &f.panels {
            assert_eq!(p.curves.len(), 2);
            assert_eq!(p.curves[0].0, "BBV");
            assert_eq!(p.curves[1].0, "BBV+DDV");
        }
    }

    #[test]
    fn headlines_compute() {
        let lu = headline_lu(Scale::Test);
        assert_eq!(lu.cov_at_7_phases.len(), 3);
        let fmm = headline_fmm(Scale::Test, 8, 7.0);
        assert_eq!(fmm.n_procs, 8);
    }
}
