//! Sensitivity studies around the paper's fixed design points:
//!
//! * **detector geometry** — the paper fixes a 32-entry accumulator and a
//!   32-vector footprint table; how does detection quality move with the
//!   hardware budget?
//! * **interval length** — the paper uses 3 M instructions ÷ n (and argues
//!   100 M would be the "real-world" choice); how sensitive are the CoV
//!   curves to the sampling interval?
//! * **data placement** — the structural workloads place data at its
//!   owner; how much of the DSM phase behaviour survives under naive
//!   round-robin page/block interleaving?

use dsm_phase::detector::DetectorGeometry;
use dsm_sim::config::DistributionPolicy;
use dsm_workloads::{App, Scale};
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentConfig;
use crate::parallel::par_map;
use crate::sweep::{bbv_curve_with, bbv_ddv_curve_with};
use crate::trace::capture_with;

/// One sensitivity observation: CoV at fixed phase budgets for both
/// detectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    pub label: String,
    pub bbv_at_15: Option<f64>,
    pub ddv_at_15: Option<f64>,
    pub mean_cpi: f64,
    pub remote_miss_fraction: f64,
    pub intervals_per_proc: usize,
}

fn observe(label: String, trace: &crate::trace::SystemTrace) -> SensitivityPoint {
    let bbv = bbv_curve_with(trace, 60);
    let ddv = bbv_ddv_curve_with(trace, 12, 8);
    let n = trace.config.n_procs as f64;
    SensitivityPoint {
        label,
        bbv_at_15: bbv.cov_at_phases(15.0),
        ddv_at_15: ddv.cov_at_phases(15.0),
        mean_cpi: trace.stats.mean_cpi(),
        remote_miss_fraction: trace
            .stats
            .procs
            .iter()
            .map(|p| p.remote_miss_fraction())
            .sum::<f64>()
            / n,
        intervals_per_proc: trace.min_intervals(),
    }
}

/// Sweep the detector hardware budget: accumulator entries × footprint
/// vectors.
pub fn geometry_sweep(
    app: App,
    n_procs: usize,
    scale: Scale,
    sizes: &[(usize, usize)],
) -> Vec<SensitivityPoint> {
    let config = crate::figures::config_at(app, n_procs, scale);
    par_map(sizes.to_vec(), |(bbv_entries, footprint_vectors)| {
        let geometry = DetectorGeometry {
            bbv_entries,
            footprint_vectors,
            ws_bits: 1024,
        };
        let trace = capture_with(config, config.system_config(), geometry);
        // Classify against the geometry's own footprint capacity.
        let bbv = crate::sweep::bbv_curve_cap(&trace, 60, footprint_vectors);
        let ddv = crate::sweep::bbv_ddv_curve_cap(&trace, 12, 8, footprint_vectors);
        SensitivityPoint {
            label: format!("{bbv_entries}-entry BBV, {footprint_vectors}-vector table"),
            bbv_at_15: bbv.cov_at_phases(15.0),
            ddv_at_15: ddv.cov_at_phases(15.0),
            mean_cpi: trace.stats.mean_cpi(),
            remote_miss_fraction: 0.0,
            intervals_per_proc: trace.min_intervals(),
        }
    })
}

/// Sweep the system-wide interval base (per-processor interval =
/// `base / n`).
pub fn interval_sweep(
    app: App,
    n_procs: usize,
    scale: Scale,
    bases: &[u64],
) -> Vec<SensitivityPoint> {
    par_map(bases.to_vec(), |base| {
        let config = ExperimentConfig {
            interval_base: base,
            ..crate::figures::config_at(app, n_procs, scale)
        };
        let trace = capture_with(config, config.system_config(), DetectorGeometry::default());
        observe(format!("{}k-instruction base", base / 1000), &trace)
    })
}

/// Compare data-placement policies: owner-aware explicit placement (the
/// workloads' native layout, like SPLASH-2's decompositions) against naive
/// round-robin interleaving.
pub fn placement_sweep(app: App, n_procs: usize, scale: Scale) -> Vec<SensitivityPoint> {
    let variants = vec![
        (DistributionPolicy::Explicit, "explicit (owner-aware)"),
        (DistributionPolicy::PageInterleave, "page-interleaved"),
        (DistributionPolicy::BlockInterleave, "block-interleaved"),
    ];
    par_map(variants, |(policy, label)| {
        let config = crate::figures::config_at(app, n_procs, scale);
        let mut sys_cfg = config.system_config();
        sys_cfg.distribution = policy;
        let trace = capture_with(config, sys_cfg, DetectorGeometry::default());
        observe(label.to_string(), &trace)
    })
}

/// Sweep the number of SDRAM banks per memory controller (Table I says
/// "interleaved"; the calibrated default is a single queue, the worst case
/// for hot homes).
pub fn bank_sweep(
    app: App,
    n_procs: usize,
    scale: Scale,
    banks: &[usize],
) -> Vec<SensitivityPoint> {
    par_map(banks.to_vec(), |b| {
        let config = crate::figures::config_at(app, n_procs, scale);
        let mut sys_cfg = config.system_config();
        sys_cfg.memory.banks = b;
        let trace = capture_with(config, sys_cfg, DetectorGeometry::default());
        observe(format!("{b} bank(s)"), &trace)
    })
}

/// Compare the default (memory-controller-only) contention model against
/// the link-level wormhole contention model.
pub fn network_model_sweep(app: App, n_procs: usize, scale: Scale) -> Vec<SensitivityPoint> {
    let variants = vec![
        (false, "memctrl contention only"),
        (true, "+ link-level wormhole contention"),
    ];
    par_map(variants, |(link, label)| {
        let config = crate::figures::config_at(app, n_procs, scale);
        let mut sys_cfg = config.system_config();
        sys_cfg.network.link_contention = link;
        let trace = capture_with(config, sys_cfg, DetectorGeometry::default());
        observe(label.to_string(), &trace)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sweep_produces_points() {
        let pts = geometry_sweep(App::Lu, 2, Scale::Test, &[(8, 8), (32, 32)]);
        assert_eq!(pts.len(), 2);
        // Same simulation, different detector budget: same interval count.
        assert_eq!(pts[0].intervals_per_proc, pts[1].intervals_per_proc);
    }

    #[test]
    fn interval_sweep_changes_interval_counts() {
        // 4k is the base the scale sweep runs at (crates/harness/src/scale.rs);
        // keeping it in the sensitivity sweep pins it as an established point.
        let pts = interval_sweep(App::Equake, 2, Scale::Test, &[4_000, 8_000, 32_000]);
        assert!(pts[0].intervals_per_proc > pts[1].intervals_per_proc);
        assert!(pts[1].intervals_per_proc > pts[2].intervals_per_proc * 2);
    }

    #[test]
    fn more_banks_reduce_contention() {
        let one = bank_sweep(App::Art, 8, Scale::Test, &[1]);
        let four = bank_sweep(App::Art, 8, Scale::Test, &[4]);
        assert!(
            four[0].mean_cpi <= one[0].mean_cpi,
            "banking cannot slow the memory system: {} vs {}",
            one[0].mean_cpi,
            four[0].mean_cpi
        );
    }

    #[test]
    fn link_contention_model_slows_the_machine() {
        let pts = network_model_sweep(App::Lu, 8, Scale::Test);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].mean_cpi >= pts[0].mean_cpi,
            "adding link contention cannot speed the machine up: {} vs {}",
            pts[0].mean_cpi,
            pts[1].mean_cpi
        );
    }

    #[test]
    fn placement_changes_remote_traffic() {
        let pts = placement_sweep(App::Lu, 4, Scale::Test);
        assert_eq!(pts.len(), 3);
        let explicit = pts[0].remote_miss_fraction;
        let interleaved = pts[1].remote_miss_fraction;
        // Owner-aware placement keeps more misses local than round-robin
        // pages (which scatter each owner's working set everywhere).
        assert!(
            interleaved > explicit,
            "interleaving must raise remote share: {explicit} vs {interleaved}"
        );
    }
}
