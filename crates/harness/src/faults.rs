//! Fault-sweep experiment: phase-detection robustness under injected
//! faults.
//!
//! For each fault rate the sweep re-runs a workload with the simulator's
//! deterministic fault layer enabled (message drops with retry/backoff,
//! duplicates NACKed at the home, latency spikes, transient node
//! slowdowns), classifies the captured intervals with the paper's BBV+DDV
//! detector at fixed thresholds, and reports how much the identifier CoV of
//! CPI degrades relative to the fault-free *golden* run of the identical
//! workload. Two invariants are checked on every point:
//!
//! * **conservation** — `directory.reads + writes == Σ l2_misses`: no
//!   coherence transaction is lost to a drop or double-committed by a
//!   duplicate;
//! * **termination** — the run completes (the retry escalation path bounds
//!   every delivery), and the finish cycle is reported so livelock would
//!   surface as a runaway slowdown factor.

use dsm_analysis::cov::{identifier_cov, phase_count};
use dsm_phase::detector::{DetectorMode, Thresholds, TraceClassifier};
use dsm_phase::DEFAULT_FOOTPRINT_VECTORS;
use dsm_sim::config::FaultPlan;
use dsm_workloads::App;

use crate::experiment::ExperimentConfig;
use crate::json::Json;
use crate::trace::{capture, capture_with_faults, SystemTrace};

/// Thresholds the sweep classifies at (mid-range values from the paper's
/// operating region; the sweep compares like against like, so the exact
/// point matters less than holding it fixed across fault rates).
pub const SWEEP_THRESHOLDS: Thresholds = Thresholds { bbv: 0.1, dds: 0.1 };

/// One fault rate's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Per-message fault rate (probability of drop; duplicates/spikes are
    /// scaled from it by [`FaultPlan::mixed`]).
    pub rate: f64,
    /// Mean per-processor identifier CoV of CPI at [`SWEEP_THRESHOLDS`].
    pub cov: f64,
    /// `cov - golden.cov`: positive when faults blur phase boundaries.
    pub cov_degradation: f64,
    /// Mean phases detected per processor.
    pub phases: f64,
    /// Finish cycle relative to the golden run (1.0 = no slowdown).
    pub slowdown: f64,
    /// Conservation invariant: held on every point or the sweep panics.
    pub conserved: bool,
    /// Fault-layer counters for the report.
    pub drops: u64,
    pub duplicates: u64,
    pub forced_deliveries: u64,
    pub nacks: u64,
}

/// A whole sweep: the golden point (rate 0.0) plus one point per rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweep {
    pub app: App,
    pub n_procs: usize,
    pub seed: u64,
    pub golden_cov: f64,
    pub golden_finish_cycle: u64,
    pub points: Vec<FaultPoint>,
}

/// Mean per-processor identifier CoV and phase count of a trace classified
/// with the given detector `mode` at `thresholds`.
pub fn classified_cov(
    trace: &SystemTrace,
    mode: DetectorMode,
    thresholds: Thresholds,
) -> (f64, f64) {
    let mut covs = Vec::new();
    let mut phases = Vec::new();
    for recs in &trace.records {
        if recs.is_empty() {
            continue;
        }
        let ids = TraceClassifier::classify_proc(recs, mode, thresholds, DEFAULT_FOOTPRINT_VECTORS);
        let pairs: Vec<(u32, f64)> = ids.iter().zip(recs).map(|(&id, r)| (id, r.cpi())).collect();
        covs.push(identifier_cov(&pairs));
        phases.push(phase_count(&pairs) as f64);
    }
    let n = covs.len().max(1) as f64;
    (covs.iter().sum::<f64>() / n, phases.iter().sum::<f64>() / n)
}

/// Run the sweep for one workload over the given fault rates.
pub fn fault_sweep(app: App, n_procs: usize, seed: u64, rates: &[f64]) -> FaultSweep {
    let config = ExperimentConfig::test(app, n_procs);
    let golden = capture(config);
    assert!(
        golden.stats.coherence_transactions_conserved(),
        "golden run must conserve transactions"
    );
    let (golden_cov, _) = classified_cov(&golden, DetectorMode::BbvDdv, SWEEP_THRESHOLDS);

    let points = rates
        .iter()
        .map(|&rate| {
            let trace = capture_with_faults(config, FaultPlan::mixed(seed, rate));
            let stats = &trace.stats;
            let conserved = stats.coherence_transactions_conserved();
            assert!(
                conserved,
                "{} {}P rate {rate}: transactions not conserved \
                 (reads {} + writes {} != misses)",
                app.name(),
                n_procs,
                stats.directory.reads,
                stats.directory.writes,
            );
            let (cov, phases) = classified_cov(&trace, DetectorMode::BbvDdv, SWEEP_THRESHOLDS);
            FaultPoint {
                rate,
                cov,
                cov_degradation: cov - golden_cov,
                phases,
                slowdown: if golden.stats.finish_cycle > 0 {
                    stats.finish_cycle as f64 / golden.stats.finish_cycle as f64
                } else {
                    1.0
                },
                conserved,
                drops: stats.faults.drops,
                duplicates: stats.faults.duplicates,
                forced_deliveries: stats.faults.forced_deliveries,
                nacks: stats.directory.nacks,
            }
        })
        .collect();

    FaultSweep {
        app,
        n_procs,
        seed,
        golden_cov,
        golden_finish_cycle: golden.stats.finish_cycle,
        points,
    }
}

/// Default rates swept by the `faults` binary.
pub const DEFAULT_RATES: [f64; 4] = [0.001, 0.005, 0.01, 0.05];

impl FaultSweep {
    /// JSON artefact (schema documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("app", self.app.name())
            .field("n_procs", self.n_procs)
            .field("seed", self.seed)
            .field("thresholds", Json::obj()
                .field("bbv", SWEEP_THRESHOLDS.bbv)
                .field("dds", SWEEP_THRESHOLDS.dds))
            .field("golden_cov", self.golden_cov)
            .field("golden_finish_cycle", self.golden_finish_cycle)
            .field(
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("rate", p.rate)
                                .field("cov", p.cov)
                                .field("cov_degradation", p.cov_degradation)
                                .field("phases", p.phases)
                                .field("slowdown", p.slowdown)
                                .field("conserved", p.conserved)
                                .field("drops", p.drops)
                                .field("duplicates", p.duplicates)
                                .field("forced_deliveries", p.forced_deliveries)
                                .field("nacks", p.nacks)
                        })
                        .collect(),
                ),
            )
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} {}P seed {} — golden CoV {:.4}, finish {} cycles\n\
             {:>8} {:>8} {:>10} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7}\n",
            self.app.name(),
            self.n_procs,
            self.seed,
            self.golden_cov,
            self.golden_finish_cycle,
            "rate",
            "CoV",
            "ΔCoV",
            "phases",
            "slowdown",
            "drops",
            "dups",
            "forced",
            "nacks",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>8.3} {:>8.4} {:>+10.4} {:>7.1} {:>8.3}x {:>7} {:>7} {:>7} {:>7}\n",
                p.rate,
                p.cov,
                p.cov_degradation,
                p.phases,
                p.slowdown,
                p.drops,
                p.duplicates,
                p.forced_deliveries,
                p.nacks,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_rate_zero_matches_plain_capture() {
        let config = ExperimentConfig::test(App::Lu, 2);
        let plain = capture(config);
        let with_none = capture_with_faults(config, FaultPlan::none());
        assert_eq!(plain.stats, with_none.stats);
        assert_eq!(plain.records, with_none.records);
    }

    #[test]
    fn sweep_conserves_and_reports_degradation() {
        let s = fault_sweep(App::Lu, 4, 7, &[0.01, 0.05]);
        assert_eq!(s.points.len(), 2);
        for p in &s.points {
            assert!(p.conserved);
            assert!(p.slowdown >= 1.0, "faults cannot speed the system up: {}", p.slowdown);
            assert!(p.drops > 0, "1% drop rate must actually drop messages");
        }
        // More faults, more injected latency.
        assert!(s.points[1].slowdown >= s.points[0].slowdown);
    }

    #[test]
    fn sweep_json_schema_is_stable() {
        let s = fault_sweep(App::Fmm, 2, 1, &[0.01]);
        let j = s.to_json();
        let text = j.to_string();
        let back = crate::json::parse(&text).expect("self-parse");
        assert_eq!(back.get("app").and_then(Json::as_str), Some("FMM"));
        let pts = back.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(pts.len(), 1);
        for key in [
            "rate",
            "cov",
            "cov_degradation",
            "phases",
            "slowdown",
            "conserved",
            "drops",
            "duplicates",
            "forced_deliveries",
            "nacks",
        ] {
            assert!(pts[0].get(key).is_some(), "missing {key}");
        }
    }
}
