//! [`AdaptSession`]: the closed loop. A live simulated machine, an online
//! classifier, the §II tuning protocol, and an actuator — wired so that
//! locked configurations are *real reconfigurations applied mid-run*, not
//! cost-model multipliers.
//!
//! Per global interval boundary:
//!
//! 1. the simulator runs to the boundary ([`System::run_to_interval`]);
//! 2. the just-completed proc-0 interval record is classified online
//!    ([`ClassifierBank::classify_raw`] — proc 0 stands in for the
//!    detector's distributed consensus, whose per-processor streams agree
//!    on phase structure by construction of the shared DDV);
//! 3. the classification feeds the [`Protocol`]; degraded intervals are
//!    skipped entirely (no trial spent, no machine change);
//! 4. the configuration the protocol wants next is applied through the
//!    [`Machine`](dsm_sim::reconfig::Machine) seam before the next interval
//!    runs.
//!
//! The trial score is the interval's **measured CPI on the real machine** —
//! the concrete counterpart of the harness's abstract cost-multiplier
//! surface. One interval of lag is inherent (a phase is only known once its
//! interval completes); the §II protocol has the same property.
//!
//! With the [`NoopActuator`](crate::actuator::NoopActuator) the session is
//! a pure observer: its run is bit-identical to a plain capture (pinned by
//! the `adapt_equivalence` suite). A session snapshots into an
//! [`AdaptSnap`] (carried by `DSMCKPT5` next to the machine and collector
//! state) and resumes mid-tuning bit-exactly: the classifier bank is
//! rebuilt by replaying classification over the recorded interval prefix,
//! which is deterministic.

use serde::{Deserialize, Serialize};

use dsm_phase::detector::{AvailabilityModel, DetectorMode, Thresholds, TraceCollector};
use dsm_phase::signature::ClassifierBank;
use dsm_phase::IntervalRecord;
use dsm_sim::stats::SystemStats;
use dsm_sim::system::System;
use dsm_sim::InstructionStream;
use dsm_telemetry::MetricsRegistry;

use crate::actuator::Actuator;
use crate::protocol::{Decision, DecisionKind, PhaseSnap, Protocol, TuningPolicy};

/// Session knobs: the tuning policy, the classifier configuration, and the
/// (optional) availability model that injects degraded intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    pub policy: TuningPolicy,
    pub mode: DetectorMode,
    pub thresholds: Thresholds,
    /// When set, an interval is degraded iff any remote DDV row misses
    /// proc 0's gather for it (the same seeded hash the detector's
    /// availability studies use). `None` = fully reliable.
    pub availability: Option<AvailabilityModel>,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            policy: TuningPolicy::default(),
            mode: DetectorMode::BbvDdv,
            thresholds: Thresholds { bbv: 0.5, dds: 0.3 },
            availability: None,
        }
    }
}

/// One classified interval as the session saw it — the concrete loop's
/// classified stream, comparable 1:1 with the abstract pipeline's input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedInterval {
    pub index: u64,
    pub phase: u32,
    pub cpi: f64,
    pub degraded: bool,
}

/// Everything a mid-run session must carry across a checkpoint besides the
/// machine and collector state (which `DSMCKPT5` stores separately):
/// protocol states, the decision log, the observed stream, and the
/// actuator's private words. The classifier bank is *not* stored — it is
/// rebuilt deterministically by replaying classification over the first
/// `processed` recorded proc-0 intervals.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AdaptSnap {
    /// Global interval boundary the simulator has run to.
    pub target: u64,
    /// Proc-0 interval records consumed (classified + fed to the protocol).
    pub processed: u64,
    pub phases: Vec<PhaseSnap>,
    pub decisions: Vec<Decision>,
    pub stream: Vec<ObservedInterval>,
    pub retunes: u64,
    /// Opaque actuator state ([`Actuator::export`]).
    pub actuator: Vec<u64>,
}

/// Result of a completed session.
#[derive(Debug, Clone)]
pub struct AdaptOutcome {
    pub stats: SystemStats,
    /// Interval records per processor — identical to a plain capture's for
    /// the no-op arm.
    pub records: Vec<Vec<IntervalRecord>>,
    /// The classified stream the protocol consumed.
    pub stream: Vec<ObservedInterval>,
    pub decisions: Vec<Decision>,
    /// Phases that entered tuning.
    pub retunes: u64,
    /// Phases whose tuning completed.
    pub locked_phases: usize,
}

impl AdaptOutcome {
    /// Intervals spent in trial-and-error exploration.
    pub fn tuning_intervals(&self) -> usize {
        self.decisions.iter().filter(|d| matches!(d.kind, DecisionKind::Trial { .. })).count()
    }

    /// Intervals skipped because classification was degraded.
    pub fn degraded_intervals(&self) -> usize {
        self.stream.iter().filter(|o| o.degraded).count()
    }

    /// Mirror the session counters into a metrics registry under `adapt/`.
    pub fn publish(&self, reg: &mut MetricsRegistry) {
        reg.counter_add("adapt/intervals", self.stream.len() as u64);
        reg.counter_add("adapt/tuning_intervals", self.tuning_intervals() as u64);
        reg.counter_add("adapt/degraded_intervals", self.degraded_intervals() as u64);
        reg.counter_add("adapt/retunes", self.retunes);
        reg.counter_add("adapt/locked_phases", self.locked_phases as u64);
        reg.gauge_set("adapt/finish_cycle", self.stats.finish_cycle as f64);
        self.stats.reconfig.publish("adapt", reg);
    }
}

/// The live closed loop over a simulated machine.
pub struct AdaptSession<S: InstructionStream> {
    sys: System<S, TraceCollector>,
    bank: ClassifierBank,
    protocol: Protocol,
    actuator: Box<dyn Actuator>,
    cfg: AdaptConfig,
    stream: Vec<ObservedInterval>,
    /// Global interval boundary the simulator has been driven to.
    target: u64,
    /// Proc-0 records consumed.
    processed: u64,
    n_procs: usize,
}

impl<S: InstructionStream> AdaptSession<S> {
    /// Wrap a freshly built system (same construction as a plain capture).
    /// Calls [`Actuator::prepare`] immediately.
    pub fn new(mut sys: System<S, TraceCollector>, mut actuator: Box<dyn Actuator>, cfg: AdaptConfig) -> Self {
        let n_procs = sys.observer().records.len();
        let geometry = sys.observer().geometry();
        actuator.prepare(&mut sys);
        Self {
            sys,
            bank: ClassifierBank::new(n_procs, cfg.mode, cfg.thresholds, geometry.footprint_vectors),
            protocol: Protocol::new(cfg.policy),
            actuator,
            cfg,
            stream: Vec::new(),
            target: 0,
            processed: 0,
            n_procs,
        }
    }

    /// Rebuild a session from a restored machine and an [`AdaptSnap`]. The
    /// system must already be restored (state + collector + fast-forwarded
    /// stream, as for any checkpoint resume); this replays classification
    /// over the recorded prefix to rebuild the bank, then installs the
    /// snapshotted protocol and actuator state.
    pub fn resume(
        mut sys: System<S, TraceCollector>,
        mut actuator: Box<dyn Actuator>,
        cfg: AdaptConfig,
        snap: &AdaptSnap,
    ) -> Self {
        let n_procs = sys.observer().records.len();
        let geometry = sys.observer().geometry();
        actuator.prepare(&mut sys);
        actuator.import(&snap.actuator);
        let mut bank =
            ClassifierBank::new(n_procs, cfg.mode, cfg.thresholds, geometry.footprint_vectors);
        assert!(
            sys.observer().records[0].len() >= snap.processed as usize,
            "restored collector holds fewer proc-0 records than the session consumed"
        );
        for (i, obs) in snap.stream.iter().enumerate() {
            let r = &sys.observer().records[0][i];
            debug_assert_eq!(r.index, obs.index);
            let ci = bank.classify_raw(0, r.index, r.cpi(), &r.bbv, r.dds, obs.degraded);
            debug_assert_eq!(ci.phase_id, obs.phase, "replayed classification diverged");
        }
        Self {
            sys,
            bank,
            protocol: Protocol::import(cfg.policy, &snap.phases, snap.decisions.clone(), snap.retunes),
            actuator,
            cfg,
            stream: snap.stream.clone(),
            target: snap.target,
            processed: snap.processed,
            n_procs,
        }
    }

    /// The wrapped system (state/collector snapshots for checkpointing).
    pub fn system(&self) -> &System<S, TraceCollector> {
        &self.sys
    }

    /// Global interval boundary reached so far.
    pub fn boundary(&self) -> u64 {
        self.target
    }

    /// Session state for `DSMCKPT5`. Meaningful at an interval boundary
    /// (i.e. between [`AdaptSession::step_boundary`] calls), like
    /// [`System::state_snapshot`].
    pub fn adapt_snap(&self) -> AdaptSnap {
        AdaptSnap {
            target: self.target,
            processed: self.processed,
            phases: self.protocol.export_phases(),
            decisions: self.protocol.decisions().to_vec(),
            stream: self.stream.clone(),
            retunes: self.protocol.retunes(),
            actuator: self.actuator.export(),
        }
    }

    fn degraded(&self, interval: u64) -> bool {
        match &self.cfg.availability {
            None => false,
            Some(a) => (1..self.n_procs).any(|s| a.row_missed(0, s, interval)),
        }
    }

    /// Classify and feed every proc-0 record not yet consumed, applying the
    /// actuator after each protocol step.
    fn drain_records(&mut self) {
        while (self.processed as usize) < self.sys.observer().records[0].len() {
            let (obs, next_cfg) = {
                let r = &self.sys.observer().records[0][self.processed as usize];
                let degraded = self.degraded(r.index);
                let ci = self.bank.classify_raw(0, r.index, r.cpi(), &r.bbv, r.dds, degraded);
                let obs = ObservedInterval {
                    index: r.index,
                    phase: ci.phase_id,
                    cpi: ci.cpi,
                    degraded,
                };
                (obs, self.protocol.observe(r.index, ci.phase_id, ci.cpi, degraded))
            };
            self.stream.push(obs);
            self.processed += 1;
            if let Some(c) = next_cfg {
                self.actuator.apply(&mut self.sys, c);
            }
        }
    }

    /// Advance one global interval boundary; returns false once the
    /// workload has finished (any trailing records are still consumed).
    pub fn step_boundary(&mut self) -> bool {
        self.target += 1;
        let reached = self.sys.run_to_interval(self.target);
        self.drain_records();
        // `run_to_interval` reports `true` vacuously once every processor
        // has finished (the boundary index is past the end of the run);
        // treat that as completion or the drive loop would never stop.
        reached && self.sys.min_interval_index() != u64::MAX
    }

    /// Drive to global boundary `boundary` (for checkpointing mid-run);
    /// returns false if the workload ended first.
    pub fn run_to_boundary(&mut self, boundary: u64) -> bool {
        while self.target < boundary {
            if !self.step_boundary() {
                return false;
            }
        }
        true
    }

    /// Drive to completion.
    pub fn run(mut self) -> AdaptOutcome {
        while self.step_boundary() {}
        let decisions = self.protocol.decisions().to_vec();
        let retunes = self.protocol.retunes();
        let locked_phases = self.protocol.locked_phases();
        let (stats, collector) = self.sys.run_to_end();
        AdaptOutcome {
            stats,
            records: collector.records,
            stream: self.stream,
            decisions,
            retunes,
            locked_phases,
        }
    }
}

/// Run a system under one *fixed* actuator configuration applied at every
/// interval boundary — no tuning, no classification. The oracle arm is the
/// minimum over configs of this; config 0 is the untuned machine.
pub fn run_locked<S: InstructionStream>(
    mut sys: System<S, TraceCollector>,
    actuator: &mut dyn Actuator,
    config: usize,
) -> (SystemStats, Vec<Vec<IntervalRecord>>) {
    actuator.prepare(&mut sys);
    let mut target = 0u64;
    loop {
        target += 1;
        if !sys.run_to_interval(target) || sys.min_interval_index() == u64::MAX {
            break;
        }
        actuator.apply(&mut sys, config);
    }
    let (stats, collector) = sys.run_to_end();
    (stats, collector.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::{DvfsActuator, MigrationActuator, NoopActuator};
    use dsm_phase::detector::DetectorGeometry;
    use dsm_sim::config::{DistributionPolicy, SystemConfig};
    use dsm_sim::network::Network;
    use dsm_workloads::{make_stream, App, Scale};

    fn test_system(app: App, n: usize) -> System<impl InstructionStream, TraceCollector> {
        test_system_dist(app, n, None)
    }

    fn test_system_dist(
        app: App,
        n: usize,
        dist: Option<DistributionPolicy>,
    ) -> System<impl InstructionStream, TraceCollector> {
        let mut cfg = SystemConfig::scaled(n, 16_000);
        if let Some(d) = dist {
            cfg.distribution = d;
        }
        let stream = make_stream(app, n, Scale::Test);
        let dmat = Network::new(cfg.network, n).distance_matrix();
        let collector = TraceCollector::new(n, dmat, DetectorGeometry::default());
        System::new(cfg, stream, collector)
    }

    #[test]
    fn noop_session_is_bit_identical_to_plain_run() {
        let (plain_stats, plain_coll) = test_system(App::Lu, 2).run();
        let out = AdaptSession::new(
            test_system(App::Lu, 2),
            Box::new(NoopActuator),
            AdaptConfig::default(),
        )
        .run();
        assert_eq!(out.stats, plain_stats);
        assert_eq!(out.records, plain_coll.records);
        assert!(out.stats.reconfig.is_inert());
        assert!(!out.stream.is_empty());
        assert!(out.retunes >= 1);
    }

    #[test]
    fn migration_session_actually_migrates() {
        let out = AdaptSession::new(
            test_system_dist(App::Lu, 4, Some(DistributionPolicy::FirstTouch)),
            Box::new(MigrationActuator),
            AdaptConfig::default(),
        )
        .run();
        // The protocol explores configs 1..3 during tuning, which move
        // pages on a first-touch placement with cross-node traffic.
        assert!(out.stats.reconfig.migrations > 0, "tuning trials must migrate pages");
        assert_eq!(
            out.stats.reconfig.migration_stall_cycles % dsm_sim::reconfig::PAGE_MIGRATE_STALL_CYCLES,
            0
        );
    }

    #[test]
    fn run_locked_config_zero_matches_untuned() {
        let (plain_stats, _) = test_system(App::Fmm, 2).run();
        let (locked_stats, _) =
            run_locked(test_system(App::Fmm, 2), &mut NoopActuator, 0);
        assert_eq!(plain_stats, locked_stats);
        // Dvfs config 0 is all-nominal: also identical.
        let (dvfs0, _) = run_locked(test_system(App::Fmm, 2), &mut DvfsActuator, 0);
        assert_eq!(plain_stats, dvfs0);
    }

    #[test]
    fn dvfs_session_counts_epochs_and_conserves_coherence() {
        let (stats, _) = run_locked(test_system(App::Equake, 4), &mut DvfsActuator, 2);
        assert!(stats.reconfig.dvfs_epochs > 0);
        assert!(stats.coherence_transactions_conserved());
    }

    #[test]
    fn snapshot_resume_mid_tuning_is_bit_exact() {
        // Straight-through run.
        let straight = AdaptSession::new(
            test_system_dist(App::Lu, 2, Some(DistributionPolicy::FirstTouch)),
            Box::new(MigrationActuator),
            AdaptConfig::default(),
        )
        .run();

        // Split run: stop mid-tuning (boundary 2 is inside the 4-trial
        // exploration of the first phase), snapshot, rebuild, continue.
        let mut first = AdaptSession::new(
            test_system_dist(App::Lu, 2, Some(DistributionPolicy::FirstTouch)),
            Box::new(MigrationActuator),
            AdaptConfig::default(),
        );
        assert!(first.run_to_boundary(2));
        let sys_state = first.system().state_snapshot();
        let coll_state = first.system().observer().export_state();
        let snap = first.adapt_snap();
        assert!(!snap.phases.is_empty());
        drop(first);

        let mut stream = make_stream(App::Lu, 2, Scale::Test);
        for (p, &n) in sys_state.fetched.iter().enumerate() {
            for _ in 0..n {
                let _ = stream.next(p);
            }
        }
        let mut cfg = SystemConfig::scaled(2, 16_000);
        cfg.distribution = DistributionPolicy::FirstTouch;
        let dmat = Network::new(cfg.network, 2).distance_matrix();
        let mut collector = TraceCollector::new(2, dmat, DetectorGeometry::default());
        collector.import_state(&coll_state);
        let mut sys = System::new(cfg, stream, collector);
        sys.restore_state(&sys_state);

        let resumed =
            AdaptSession::resume(sys, Box::new(MigrationActuator), AdaptConfig::default(), &snap)
                .run();
        assert_eq!(resumed.stats, straight.stats);
        assert_eq!(resumed.records, straight.records);
        assert_eq!(resumed.decisions, straight.decisions);
        assert_eq!(resumed.stream, straight.stream);
    }
}
