//! Actuators: what a tuning-protocol configuration number *means* on the
//! machine.
//!
//! Each actuator interprets the protocol's config space `0..n_configs` as a
//! family of real reconfigurations applied through the
//! [`Machine`](dsm_sim::reconfig::Machine) seam at interval boundaries.
//! Config 0 is always the machine's default setting, so the untuned arm and
//! the first trial of every phase run the stock machine — and the
//! [`NoopActuator`] (every config inert) leaves any run bit-identical to a
//! simulator without the adaptation layer.

use dsm_sim::config::CoreConfig;
use dsm_sim::reconfig::{Machine, DVFS_NOMINAL};

/// DVFS numerator for a boosted node (deeper effective MLP window: fewer
/// exposed stall cycles — 224/256 ≈ 0.875×).
pub const DVFS_BOOST_NUM: u64 = 224;
/// DVFS numerator for a slowed node (288/256 = 1.125× exposed stall).
pub const DVFS_SLOW_NUM: u64 = 288;

/// Hot-page candidates examined by the focused migration configs.
pub const MIGRATE_TOP_SMALL: usize = 8;
/// Hot-page candidates examined by the aggressive migration config.
pub const MIGRATE_TOP_LARGE: usize = 32;
/// Hot-page candidates examined by the placement-repair config. Bounds the
/// one-sweep stall cost (each changed page stalls every processor
/// [`dsm_sim::reconfig::PAGE_MIGRATE_STALL_CYCLES`] cycles).
pub const MIGRATE_REPAIR_POOL: usize = 512;

/// A machine reconfiguration family driven by the tuning protocol.
///
/// `apply` is called at every interval boundary with the configuration the
/// protocol wants in force; it must be **idempotent** — re-applying the
/// configuration already in force performs no machine change and charges no
/// cost (the [`Machine`] knobs guarantee this: re-homing a page to its
/// current home, setting an unchanged DVFS level, or swapping in the
/// profile already in force are all free no-ops).
pub trait Actuator {
    fn name(&self) -> &'static str;

    /// Size of the configuration space (the protocol trials `0..n`).
    fn n_configs(&self) -> usize {
        4
    }

    /// One-time setup before the run starts (e.g. enabling hot-page touch
    /// tracking). Idempotent: resume paths call it again on the restored
    /// machine.
    fn prepare(&mut self, _m: &mut dyn Machine) {}

    /// Put configuration `config` in force.
    fn apply(&mut self, m: &mut dyn Machine, config: usize);

    /// Opaque actuator-private state words for checkpointing (empty for the
    /// stateless built-ins; the hook keeps DSMCKPT5 forward-compatible with
    /// stateful actuators).
    fn export(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore state captured by [`Actuator::export`].
    fn import(&mut self, _words: &[u64]) {}
}

/// Every configuration is a no-op. The differential arm: a tuned run with
/// this actuator must be bit-identical to a plain capture.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopActuator;

impl Actuator for NoopActuator {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn apply(&mut self, _m: &mut dyn Machine, _config: usize) {}
}

/// Phase-guided home-node page migration.
///
/// Configs: 0 = leave placement alone; 1 = re-home the top
/// [`MIGRATE_TOP_SMALL`] most-missed pages to their dominant toucher;
/// 2 = the same for the top [`MIGRATE_TOP_LARGE`]; 3 = placement repair:
/// re-home every page in the top [`MIGRATE_REPAIR_POOL`] whose dominant
/// toucher is a strict majority of its misses and differs from its current
/// home (the daemon shape: fix a pathological initial placement — e.g.
/// first-touch after serial initialization — in one sweep, leaving
/// genuinely shared pages alone).
///
/// The touch window resets after every non-zero application so each
/// decision sees only the traffic since the last one — migration under a
/// locked config keeps following the phase's current hot set.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationActuator;

impl Actuator for MigrationActuator {
    fn name(&self) -> &'static str {
        "migrate"
    }

    fn prepare(&mut self, m: &mut dyn Machine) {
        m.enable_touch_tracking();
    }

    fn apply(&mut self, m: &mut dyn Machine, config: usize) {
        match config {
            0 => return,
            1 | 2 => {
                let k = if config == 1 { MIGRATE_TOP_SMALL } else { MIGRATE_TOP_LARGE };
                for hp in m.hot_pages(k) {
                    m.migrate_page(hp.page, hp.dominant);
                }
            }
            3 => {
                for hp in m.hot_pages(MIGRATE_REPAIR_POOL) {
                    if hp.dominant != hp.home && 2 * hp.misses > hp.total_misses {
                        m.migrate_page(hp.page, hp.dominant);
                    }
                }
            }
            c => panic!("migration config {c} out of range"),
        }
        m.reset_touches();
    }
}

/// DVFS-style per-node slowdown/boost epochs.
///
/// Configs: 0 = every node at [`DVFS_NOMINAL`]; config `c` in 1..4 boosts
/// the `c·n/4` nodes with the most accumulated memory-stall cycles to
/// [`DVFS_BOOST_NUM`] and slows the `c·n/4` least-stalled to
/// [`DVFS_SLOW_NUM`] (spend the power budget where the stalls are). Node
/// ranking is deterministic: stall cycles descending, node id ascending on
/// ties.
#[derive(Debug, Clone, Copy, Default)]
pub struct DvfsActuator;

impl Actuator for DvfsActuator {
    fn name(&self) -> &'static str {
        "dvfs"
    }

    fn apply(&mut self, m: &mut dyn Machine, config: usize) {
        let n = m.n_procs();
        assert!(config < 4, "dvfs config {config} out of range");
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&p| (std::cmp::Reverse(m.proc_mem_stall(p)), p));
        let k = config * n / 4;
        for (rank, &p) in order.iter().enumerate() {
            let num = if rank < k {
                DVFS_BOOST_NUM
            } else if rank >= n - k {
                DVFS_SLOW_NUM
            } else {
                DVFS_NOMINAL
            };
            m.set_dvfs_level(p, num);
        }
    }
}

/// The little sibling of `profile`: half-width commit, half the FPUs, a
/// shallower pipeline (smaller mispredict penalty) and a less aggressive
/// out-of-order window (lower MLP overlap, so *less* of each memory stall
/// is exposed — 110/256 vs the big core's 154/256). Memory-bound phases
/// lose little throughput and gain stall overlap on it; compute-bound
/// phases want the big core's width. The gshare table is physical and
/// keeps its geometry.
pub fn little_core(profile: CoreConfig) -> CoreConfig {
    CoreConfig {
        commit_width: 2,
        fpu_units: 2,
        mispredict_penalty: 8,
        gshare_entries: profile.gshare_entries,
        stall_exposure_num: 110,
    }
}

/// Heterogeneous phase-to-core mapping: swap nodes between a big and a
/// little cycle-cost profile.
///
/// Configs: 0 = every node on the big (configured) profile; 1 = every node
/// little; 2 = the `n/2` most memory-stalled nodes little, rest big;
/// 3 = the `n/4` most-stalled little. Ranking as in [`DvfsActuator`].
#[derive(Debug, Clone, Copy)]
pub struct HeteroActuator {
    big: CoreConfig,
    little: CoreConfig,
}

impl HeteroActuator {
    /// `big` is the machine's configured core profile
    /// (`SystemConfig::core`) — passed explicitly so a resumed session
    /// reconstructs the same pair regardless of the profiles currently in
    /// force on the restored machine.
    pub fn new(big: CoreConfig) -> Self {
        Self { big, little: little_core(big) }
    }
}

impl Actuator for HeteroActuator {
    fn name(&self) -> &'static str {
        "hetero"
    }

    fn apply(&mut self, m: &mut dyn Machine, config: usize) {
        let n = m.n_procs();
        let little_count = match config {
            0 => 0,
            1 => n,
            2 => n / 2,
            3 => n / 4,
            c => panic!("hetero config {c} out of range"),
        };
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&p| (std::cmp::Reverse(m.proc_mem_stall(p)), p));
        for (rank, &p) in order.iter().enumerate() {
            let profile = if rank < little_count { self.little } else { self.big };
            m.set_core_profile(p, profile);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::config::SystemConfig;

    #[test]
    fn little_core_keeps_gshare_geometry() {
        let big = SystemConfig::paper(2).core;
        let little = little_core(big);
        assert_eq!(little.gshare_entries, big.gshare_entries);
        assert!(little.commit_width < big.commit_width);
        assert!(little.stall_exposure_num < big.stall_exposure_num);
    }

    #[test]
    fn builtin_actuators_expose_four_configs() {
        let big = SystemConfig::paper(2).core;
        assert_eq!(NoopActuator.n_configs(), 4);
        assert_eq!(MigrationActuator.n_configs(), 4);
        assert_eq!(DvfsActuator.n_configs(), 4);
        assert_eq!(HeteroActuator::new(big).n_configs(), 4);
        assert!(NoopActuator.export().is_empty());
    }
}
