//! The §II tuning protocol as a reusable state machine.
//!
//! "A reconfiguration module tunes the system based on this prediction, by
//! trying different hardware configurations at different intervals that
//! belong to the same phase. Once tuning is complete, the best configuration
//! is selected, and subsequently applied whenever that phase is predicted."
//!
//! [`Protocol`] is the per-phase trial/lock machine behind that sentence,
//! decoupled from *how* configurations are scored: the abstract harness
//! pipeline scores with a synthetic cost multiplier, the concrete
//! [`crate::session::AdaptSession`] scores with CPI measured on the real
//! simulated machine. The transition structure is **positional** — which
//! config a phase trials next and when it locks depend only on the order of
//! non-degraded arrivals of that phase, never on the scores — so the two
//! pipelines emit identical decision sequences on the same classified
//! stream (scores pick *which* config locks, not *when*). The
//! `adapt_equivalence` differential suite pins this.
//!
//! Degraded intervals (DDS too stale, classification fell back to BBV-only)
//! are **never spent as tuning trials**: a trial measured on an interval the
//! detector itself distrusts would poison the locked choice. A degraded
//! arrival leaves every phase state untouched and emits no decision.

use serde::{Deserialize, Serialize};

use dsm_sim::util::FxHashMap;

/// Tuning-protocol knobs: how many configurations to explore per phase and
/// for how many intervals each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningPolicy {
    pub n_configs: usize,
    pub trials_per_config: usize,
}

impl Default for TuningPolicy {
    fn default() -> Self {
        Self { n_configs: 4, trials_per_config: 1 }
    }
}

/// What the protocol decided at one interval boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// The phase is still exploring: this interval was spent trialling
    /// `config`. Positional — config numbers always run 0..n_configs in
    /// order, independent of scores.
    Trial { config: usize },
    /// Tuning for the phase completed and `config` was locked. The locked
    /// number depends on the measured scores; differential comparisons
    /// against a differently-scored run compare [`Decision::key`] instead.
    Lock { config: usize },
}

/// One entry of the decision log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Global interval index the classified interval belonged to.
    pub interval: u64,
    /// Detector phase id the decision belongs to.
    pub phase: u32,
    pub kind: DecisionKind,
}

impl Decision {
    /// Score-independent projection: two runs of the protocol over the same
    /// `(phase, degraded)` stream produce identical key sequences no matter
    /// how trials are scored (the locked config number is the only
    /// score-dependent part of a decision).
    pub fn key(&self) -> (u64, u32, u8, usize) {
        match self.kind {
            DecisionKind::Trial { config } => (self.interval, self.phase, 0, config),
            DecisionKind::Lock { .. } => (self.interval, self.phase, 1, 0),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum PhaseState {
    Tuning { config: usize, trials_left: usize, best: (usize, f64), acc: f64, acc_n: usize },
    Locked(usize),
}

/// Serializable mirror of one phase's protocol state (DSMCKPT5 carries a
/// sorted vector of these so a resume continues mid-tuning bit-exactly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseStateSnap {
    Tuning {
        config: u64,
        trials_left: u64,
        best_config: u64,
        /// `f64::INFINITY` until the first config completes its trials.
        best_score: f64,
        acc: f64,
        acc_n: u64,
    },
    Locked { config: u64 },
}

/// One phase's snapshot entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSnap {
    pub phase: u32,
    pub state: PhaseStateSnap,
}

/// The per-phase trial/lock state machine plus its decision log.
#[derive(Debug, Clone)]
pub struct Protocol {
    policy: TuningPolicy,
    states: FxHashMap<u32, PhaseState>,
    decisions: Vec<Decision>,
    /// Phases that entered tuning (each pays the full exploration cost).
    retunes: u64,
}

impl Protocol {
    pub fn new(policy: TuningPolicy) -> Self {
        assert!(policy.n_configs >= 1 && policy.trials_per_config >= 1);
        Self { policy, states: FxHashMap::default(), decisions: Vec::new(), retunes: 0 }
    }

    pub fn policy(&self) -> TuningPolicy {
        self.policy
    }

    /// Decision log so far, in boundary order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Phases that entered the tuning protocol.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Phases whose tuning has completed.
    pub fn locked_phases(&self) -> usize {
        self.states.values().filter(|s| matches!(s, PhaseState::Locked(_))).count()
    }

    /// Observe one classified interval: `score` is the measured cost of the
    /// configuration that phase is currently running (lower is better; the
    /// concrete loop passes the interval's CPI). Returns the configuration
    /// the machine should run while `phase` continues — the next trial
    /// config, or the locked one — or `None` for a degraded interval, which
    /// is skipped entirely: no state created, no trial consumed, no
    /// accumulator update, no decision (the machine keeps whatever
    /// configuration it is in).
    pub fn observe(&mut self, interval: u64, phase: u32, score: f64, degraded: bool) -> Option<usize> {
        if degraded {
            return None;
        }
        let policy = self.policy;
        let mut entered = false;
        let state = self.states.entry(phase).or_insert_with(|| {
            entered = true;
            PhaseState::Tuning {
                config: 0,
                trials_left: policy.trials_per_config,
                best: (0, f64::INFINITY),
                acc: 0.0,
                acc_n: 0,
            }
        });
        if entered {
            self.retunes += 1;
        }
        match state {
            PhaseState::Tuning { config, trials_left, best, acc, acc_n } => {
                self.decisions.push(Decision {
                    interval,
                    phase,
                    kind: DecisionKind::Trial { config: *config },
                });
                *acc += score;
                *acc_n += 1;
                *trials_left -= 1;
                if *trials_left == 0 {
                    let mean = *acc / *acc_n as f64;
                    if mean < best.1 {
                        *best = (*config, mean);
                    }
                    if *config + 1 < policy.n_configs {
                        *config += 1;
                        *trials_left = policy.trials_per_config;
                        *acc = 0.0;
                        *acc_n = 0;
                        Some(*config)
                    } else {
                        let locked = best.0;
                        *state = PhaseState::Locked(locked);
                        self.decisions.push(Decision {
                            interval,
                            phase,
                            kind: DecisionKind::Lock { config: locked },
                        });
                        Some(locked)
                    }
                } else {
                    Some(*config)
                }
            }
            PhaseState::Locked(c) => Some(*c),
        }
    }

    /// Export the per-phase states, sorted by phase id (deterministic
    /// encoding). The decision log is exported by the session, which owns
    /// the stream context.
    pub fn export_phases(&self) -> Vec<PhaseSnap> {
        let mut out: Vec<PhaseSnap> = self
            .states
            .iter()
            .map(|(&phase, st)| PhaseSnap {
                phase,
                state: match *st {
                    PhaseState::Tuning { config, trials_left, best, acc, acc_n } => {
                        PhaseStateSnap::Tuning {
                            config: config as u64,
                            trials_left: trials_left as u64,
                            best_config: best.0 as u64,
                            best_score: best.1,
                            acc,
                            acc_n: acc_n as u64,
                        }
                    }
                    PhaseState::Locked(c) => PhaseStateSnap::Locked { config: c as u64 },
                },
            })
            .collect();
        out.sort_unstable_by_key(|p| p.phase);
        out
    }

    /// Restore a protocol captured by [`Protocol::export_phases`] (plus the
    /// decision log and re-tune counter the session snapshot carries).
    pub fn import(policy: TuningPolicy, phases: &[PhaseSnap], decisions: Vec<Decision>, retunes: u64) -> Self {
        let mut p = Self::new(policy);
        for snap in phases {
            let st = match snap.state {
                PhaseStateSnap::Tuning { config, trials_left, best_config, best_score, acc, acc_n } => {
                    PhaseState::Tuning {
                        config: config as usize,
                        trials_left: trials_left as usize,
                        best: (best_config as usize, best_score),
                        acc,
                        acc_n: acc_n as usize,
                    }
                }
                PhaseStateSnap::Locked { config } => PhaseState::Locked(config as usize),
            };
            p.states.insert(snap.phase, st);
        }
        p.decisions = decisions;
        p.retunes = retunes;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_phase_trials_then_locks() {
        let mut p = Protocol::new(TuningPolicy::default());
        // Scores make config 2 the best.
        let scores = [3.0, 2.0, 1.0, 4.0];
        for (i, &s) in scores.iter().enumerate() {
            let cfg = p.observe(i as u64, 0, s, false);
            assert!(cfg.is_some());
        }
        // 4 trials + 1 lock.
        assert_eq!(p.decisions().len(), 5);
        assert_eq!(p.decisions()[4].kind, DecisionKind::Lock { config: 2 });
        assert_eq!(p.locked_phases(), 1);
        assert_eq!(p.retunes(), 1);
        // Subsequent intervals run the locked config, no new decisions.
        assert_eq!(p.observe(9, 0, 7.0, false), Some(2));
        assert_eq!(p.decisions().len(), 5);
    }

    #[test]
    fn degraded_intervals_are_skipped_entirely() {
        let mut p = Protocol::new(TuningPolicy::default());
        assert_eq!(p.observe(0, 0, 1.0, true), None);
        // The degraded interval created no state at all.
        assert_eq!(p.retunes(), 0);
        assert!(p.decisions().is_empty());
        // Mid-tuning degradation neither consumes a trial nor pollutes the
        // accumulator: the decision sequence is what it would have been
        // without the degraded interval.
        for i in 0..2 {
            p.observe(1 + i, 0, 1.0, false);
        }
        assert_eq!(p.observe(3, 0, 1000.0, true), None);
        for i in 0..2 {
            p.observe(4 + i, 0, 1.0, false);
        }
        let trials: Vec<usize> = p
            .decisions()
            .iter()
            .filter_map(|d| match d.kind {
                DecisionKind::Trial { config } => Some(config),
                _ => None,
            })
            .collect();
        assert_eq!(trials, vec![0, 1, 2, 3]);
        assert_eq!(p.locked_phases(), 1);
    }

    #[test]
    fn transition_structure_is_score_independent() {
        let stream = [(0u32, false), (1, false), (0, true), (0, false), (1, false), (0, false), (0, false), (1, false), (1, false)];
        let run = |scores: &dyn Fn(u64) -> f64| {
            let mut p = Protocol::new(TuningPolicy::default());
            for (i, &(phase, degraded)) in stream.iter().enumerate() {
                p.observe(i as u64, phase, scores(i as u64), degraded);
            }
            p.decisions().iter().map(Decision::key).collect::<Vec<_>>()
        };
        let a = run(&|i| i as f64);
        let b = run(&|i| 1000.0 - i as f64);
        assert_eq!(a, b, "decision keys must not depend on scores");
    }

    #[test]
    fn snapshot_roundtrip_mid_tuning() {
        let mut p = Protocol::new(TuningPolicy { n_configs: 3, trials_per_config: 2 });
        for i in 0..3 {
            p.observe(i, 7, 2.0 + i as f64, false);
        }
        let phases = p.export_phases();
        let back = Protocol::import(p.policy(), &phases, p.decisions().to_vec(), p.retunes());
        // Continuing both must agree exactly.
        let mut a = p.clone();
        let mut b = back;
        for i in 3..10 {
            assert_eq!(a.observe(i, 7, 1.5, false), b.observe(i, 7, 1.5, false));
        }
        assert_eq!(a.decisions(), b.decisions());
    }
}
