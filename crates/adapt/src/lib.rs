//! # dsm-adapt — phase-guided machine adaptation
//!
//! The paper's §II motivation for phase detection is *reconfiguration*: "a
//! reconfiguration module tunes the system … by trying different hardware
//! configurations at different intervals that belong to the same phase.
//! Once tuning is complete, the best configuration is selected, and
//! subsequently applied whenever that phase is predicted." The harness's
//! `adaptive` module models that protocol abstractly (a synthetic
//! cost-multiplier per configuration); this crate makes the locked
//! configuration a **real machine reconfiguration applied mid-run**.
//!
//! Three layers:
//!
//! * [`protocol`] — the per-phase trial/lock state machine, shared verbatim
//!   between the abstract and concrete pipelines. Its transition structure
//!   is positional (score-independent), which is what makes the
//!   decision-sequence differential between the two pipelines meaningful.
//! * [`actuator`] — what a configuration number *means* on the machine:
//!   phase-guided home-node page migration, DVFS-style stall-scaling
//!   epochs, or heterogeneous big/little core profiles, all through the
//!   object-safe [`Machine`](dsm_sim::reconfig::Machine) seam.
//! * [`session`] — the closed loop: simulate an interval, classify it
//!   online, feed the protocol, reconfigure before the next interval. A
//!   [`NoopActuator`] session is bit-identical to a plain capture;
//!   [`AdaptSnap`] rides in `DSMCKPT5` so a checkpoint taken mid-tuning
//!   resumes bit-exactly.
//!
//! Degraded intervals — where the availability model says a remote DDV row
//! missed the gather — are never spent as tuning trials and never change
//! the machine: the detector already distrusts their classification.

pub mod actuator;
pub mod protocol;
pub mod session;

pub use actuator::{
    little_core, Actuator, DvfsActuator, HeteroActuator, MigrationActuator, NoopActuator,
    DVFS_BOOST_NUM, DVFS_SLOW_NUM, MIGRATE_REPAIR_POOL, MIGRATE_TOP_LARGE, MIGRATE_TOP_SMALL,
};
pub use protocol::{
    Decision, DecisionKind, PhaseSnap, PhaseStateSnap, Protocol, TuningPolicy,
};
pub use session::{
    run_locked, AdaptConfig, AdaptOutcome, AdaptSession, AdaptSnap, ObservedInterval,
};
