//! Property battery for the diagnosis engine: clustering determinism,
//! node-label permutation invariance, and outlier-score monotonicity under
//! a widening lag.

use proptest::prelude::*;

use dsm_diagnose::{diagnose, DiagnoseConfig, NodeTelemetry};
use dsm_phase::stream::PhaseStream;
use dsm_phase::ClassifiedInterval;

fn ci(proc: usize, index: u64, phase_id: u32, cpi: f64, degraded: bool) -> ClassifiedInterval {
    ClassifiedInterval { proc, index, phase_id, is_new_phase: false, cpi, degraded }
}

/// Build a fleet from per-node `(phase_id, cpi, degraded)` rows; the node id
/// is the position in `rows`.
fn fleet(rows: &[Vec<(u32, f64, bool)>]) -> Vec<PhaseStream> {
    rows.iter()
        .enumerate()
        .map(|(p, row)| {
            PhaseStream::from_intervals(
                p,
                row.iter()
                    .enumerate()
                    .map(|(i, &(ph, cpi, deg))| ci(p, i as u64, ph, cpi, deg))
                    .collect(),
            )
        })
        .collect()
}

/// A stream running the distinct-id sequence `0..len`, delayed by `lag`
/// intervals (the first phase lingers, then the sequence plays out
/// truncated to `len`).
fn lagged_stream(node: usize, len: usize, lag: usize) -> PhaseStream {
    PhaseStream::from_intervals(
        node,
        (0..len)
            .map(|i| ci(node, i as u64, i.saturating_sub(lag) as u32, 1.0, false))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The same inputs produce the same diagnosis, every time — the engine
    /// has no hidden state or iteration-order dependence.
    #[test]
    fn diagnosis_is_deterministic(
        rows in prop::collection::vec(
            prop::collection::vec((0u32..4, 0.5f64..2.0, any::<bool>()), 4..24),
            2..7,
        ),
        mem in prop::collection::vec(0.0f64..1.0, 7),
    ) {
        let streams = fleet(&rows);
        let telemetry: Vec<NodeTelemetry> = (0..streams.len())
            .map(|p| NodeTelemetry { mem_stall_share: mem[p], ..NodeTelemetry::default() })
            .collect();
        let cfg = DiagnoseConfig::default();
        let first = diagnose(&cfg, &streams, Some(&telemetry));
        let second = diagnose(&cfg, &streams, Some(&telemetry));
        prop_assert_eq!(first, second);
    }

    /// Rotating the node labels rotates the diagnosis: clusters and scores
    /// map through the permutation, and (when the majority cluster is a
    /// unique maximum, so its tie-break cannot move) so does the outlier
    /// set. The engine must not care which node got which id.
    #[test]
    fn diagnosis_is_node_label_permutation_invariant(
        rows in prop::collection::vec(
            prop::collection::vec((0u32..4, 0.5f64..2.0, any::<bool>()), 4..24),
            2..7,
        ),
        rot_seed in 0usize..1000,
    ) {
        let n = rows.len();
        let rot = rot_seed % n;
        let perm = |i: usize| (i + rot) % n;
        let mut permuted_rows: Vec<Vec<(u32, f64, bool)>> = vec![Vec::new(); n];
        for (i, row) in rows.iter().enumerate() {
            permuted_rows[perm(i)] = row.clone();
        }

        let cfg = DiagnoseConfig::default();
        let base = diagnose(&cfg, &fleet(&rows), None);
        let rotated = diagnose(&cfg, &fleet(&permuted_rows), None);

        let mut mapped_clusters: Vec<Vec<usize>> = base
            .clusters
            .iter()
            .map(|c| {
                let mut m: Vec<usize> = c.iter().map(|&i| perm(i)).collect();
                m.sort_unstable();
                m
            })
            .collect();
        mapped_clusters.sort_by_key(|c| c[0]);
        prop_assert_eq!(&rotated.clusters, &mapped_clusters);
        for i in 0..n {
            prop_assert!(
                (rotated.scores[perm(i)] - base.scores[i]).abs() < 1e-12,
                "score of node {i} must survive relabeling"
            );
        }

        let max_size = base.clusters.iter().map(Vec::len).max().unwrap();
        let unique_max = base.clusters.iter().filter(|c| c.len() == max_size).count() == 1;
        if unique_max {
            let mut mapped_outliers: Vec<usize> =
                base.outliers.iter().map(|o| perm(o.node)).collect();
            mapped_outliers.sort_unstable();
            let mut rotated_outliers: Vec<usize> =
                rotated.outliers.iter().map(|o| o.node).collect();
            rotated_outliers.sort_unstable();
            prop_assert_eq!(rotated_outliers, mapped_outliers);
        }
    }

    /// A node running the right phase sequence ever later scores ever
    /// worse: widening the lag never *lowers* its outlier score.
    #[test]
    fn outlier_score_is_monotone_in_lag(
        max_lag in 1usize..10,
        extra in 2usize..30,
    ) {
        let len = max_lag + extra;
        let cfg = DiagnoseConfig { max_lag, ..DiagnoseConfig::default() };
        let mut prev = -1.0f64;
        for lag in 0..=max_lag {
            let mut streams: Vec<PhaseStream> =
                (0..3).map(|p| lagged_stream(p, len, 0)).collect();
            streams.push(lagged_stream(3, len, lag));
            let d = diagnose(&cfg, &streams, None);
            prop_assert!(
                d.scores[3] + 1e-12 >= prev,
                "lag {lag}: score {} dropped below {prev}",
                d.scores[3]
            );
            prev = d.scores[3];
        }
    }
}
