//! `dsm-diagnose` — cross-node phase-similarity diagnostics.
//!
//! In an SPMD run on a DSM machine, every node executes the same program,
//! so the per-node classified-interval streams produced by the phase
//! detector should agree: same phase structure, same timing, similar CPI.
//! This crate turns cross-node *disagreement* into a diagnosis:
//!
//! 1. [`kernel`] — a pairwise distance over [`PhaseStream`]s combining
//!    time-aligned phase-id disagreement, relative CPI divergence, and an
//!    edit-style lag term, with degraded intervals down-weighted;
//! 2. [`cluster`] — deterministic average-linkage clustering of the fleet,
//!    a majority ("how the program behaves") cluster, a per-node outlier
//!    score, and a flagged divergent interval range per outlier;
//! 3. [`attribute`] — root-cause hints joining each outlier against
//!    per-node telemetry counters (remote-miss share, retries, stalls,
//!    reconfig events) ranked by relative excess over the majority median;
//! 4. [`sink`] — the online consumer: a windowed [`sink::DiagnosisSink`]
//!    fed at classification time, answering the same diagnosis the offline
//!    pass would give over the retained window.
//!
//! The engine is *blind* by design: it consumes only classified intervals
//! and production telemetry counters, never a fault plan or placement
//! policy. The localization suite exploits that — it injects a straggler
//! through the fault layer and checks the engine finds the right node and
//! epoch without being told.

pub mod attribute;
pub mod cluster;
pub mod kernel;
pub mod sink;

use serde::{Deserialize, Serialize};

use dsm_phase::stream::PhaseStream;

pub use attribute::{attribute, Hint, HintKind, NodeTelemetry};
pub use cluster::{cluster, flagged_range, majority_index, outlier_scores};
pub use kernel::{canonical_phases, distance_matrix, pair_distance, slice_distance, PairDistance};
pub use sink::DiagnosisSink;

/// Tunables for the distance kernel, clustering, flagging, and attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnoseConfig {
    /// Weight of the time-aligned phase-disagreement term.
    pub phase_weight: f64,
    /// Weight of the relative-CPI-divergence term.
    pub cpi_weight: f64,
    /// Weight of the lag (best-shift alignment) term.
    pub lag_weight: f64,
    /// Per-interval relative CPI-residual divergence below this level
    /// contributes nothing to the CPI term. Real captures carry diffuse
    /// low-level residual jitter (warmup instances, data-dependent phase
    /// behaviour) on perfectly healthy nodes; a straggler's excursions sit
    /// far above it. The deadband subtracts before accumulating, so only
    /// the excess counts.
    pub cpi_deadband: f64,
    /// Maximum alignment shift searched, in intervals. Zero disables the
    /// shift search (the lag term degenerates to aligned disagreement).
    pub max_lag: usize,
    /// Weight of a degraded interval relative to a clean one in the phase
    /// and CPI terms, in `[0, 1]`.
    pub degraded_weight: f64,
    /// Average-linkage distance beyond which clusters stop merging.
    pub cluster_threshold: f64,
    /// Relative CPI deviation from the majority median beyond which an
    /// aligned interval counts as divergent when flagging a range.
    pub cpi_flag_rel: f64,
    /// Clean intervals tolerated *inside* a flagged divergent run before it
    /// splits in two.
    pub gap_tolerance: usize,
    /// Relative excess over the majority-median baseline an attribution
    /// rule must clear to emit a hint.
    pub attr_rel: f64,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        Self {
            phase_weight: 1.0,
            cpi_weight: 1.0,
            lag_weight: 0.5,
            cpi_deadband: 0.0,
            max_lag: 8,
            degraded_weight: 0.25,
            // A pure-CPI straggler caps out at cpi_weight / Σweights = 0.4
            // of the total, diluted further by the clean share of the run,
            // so the split point sits well below the per-term scale.
            cluster_threshold: 0.05,
            cpi_flag_rel: 0.25,
            gap_tolerance: 2,
            attr_rel: 0.25,
        }
    }
}

/// One node flagged as behaving unlike the majority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outlier {
    pub node: usize,
    /// Mean distance to every other node, in `[0, 1]`.
    pub score: f64,
    /// Inclusive true-interval-index range over which the node diverges
    /// from the majority consensus, when one exists.
    pub flagged: Option<(u64, u64)>,
    /// Ranked root-cause hypotheses (empty when no telemetry was supplied).
    pub hints: Vec<Hint>,
}

/// The full result of one diagnostic pass over a fleet of streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    pub n_nodes: usize,
    /// Intervals in the common aligned range across all nodes (zero when
    /// the windows share no range).
    pub aligned_intervals: u64,
    /// Behavioural clusters, each sorted ascending, ordered by smallest
    /// member.
    pub clusters: Vec<Vec<usize>>,
    /// Index into `clusters` of the majority cluster.
    pub majority: usize,
    /// Per-node outlier score (mean distance to all other nodes).
    pub scores: Vec<f64>,
    /// Every node outside the majority cluster, strongest outlier first
    /// (ties broken by node id).
    pub outliers: Vec<Outlier>,
}

impl Diagnosis {
    /// The members of the majority cluster.
    pub fn majority_nodes(&self) -> &[usize] {
        &self.clusters[self.majority]
    }

    /// Whether the fleet clustered into a single behavioural group.
    pub fn is_uniform(&self) -> bool {
        self.outliers.is_empty()
    }
}

/// Run the full diagnostic pass: distance matrix → clustering → majority →
/// outlier ranking → divergent-range flagging → (optionally) root-cause
/// attribution. `telemetry`, when given, must be indexed by node like
/// `streams`.
pub fn diagnose(
    cfg: &DiagnoseConfig,
    streams: &[PhaseStream],
    telemetry: Option<&[NodeTelemetry]>,
) -> Diagnosis {
    let n = streams.len();
    let dist = distance_matrix(cfg, streams);
    let clusters = cluster(&dist, cfg.cluster_threshold);
    let majority = majority_index(&clusters);
    let scores = outlier_scores(&dist);

    let aligned_intervals = if n == 0 {
        0
    } else {
        let lo = streams.iter().map(|s| s.first_index()).max().unwrap();
        let hi = streams.iter().map(|s| s.next_index()).min().unwrap();
        hi.saturating_sub(lo)
    };

    let majority_nodes = clusters[majority].clone();
    let mut outlier_nodes: Vec<usize> = (0..n).filter(|p| !majority_nodes.contains(p)).collect();
    outlier_nodes.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).expect("finite").then(a.cmp(&b))
    });
    let outliers = outlier_nodes
        .into_iter()
        .map(|node| Outlier {
            node,
            score: scores[node],
            flagged: flagged_range(cfg, streams, node, &majority_nodes),
            hints: telemetry
                .map(|t| attribute(cfg, node, t, &majority_nodes))
                .unwrap_or_default(),
        })
        .collect();

    Diagnosis { n_nodes: n, aligned_intervals, clusters, majority, scores, outliers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_phase::ClassifiedInterval;

    fn ci(proc: usize, index: u64, phase_id: u32, cpi: f64) -> ClassifiedInterval {
        ClassifiedInterval { proc, index, phase_id, is_new_phase: false, cpi, degraded: false }
    }

    fn fleet(n: usize, len: u64, slow: Option<(usize, std::ops::Range<u64>)>) -> Vec<PhaseStream> {
        (0..n)
            .map(|p| {
                PhaseStream::from_intervals(
                    p,
                    (0..len)
                        .map(|i| {
                            let lagging = slow
                                .as_ref()
                                .map_or(false, |(node, epoch)| *node == p && epoch.contains(&i));
                            // Two phases alternating in 4-interval blocks:
                            // every phase recurs outside any one block, so
                            // a slowed block contrasts against clean
                            // instances of the same phase.
                            ci(p, i, ((i / 4) % 2) as u32, if lagging { 3.0 } else { 1.0 })
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn uniform_fleet_is_one_cluster_with_no_outliers() {
        let d = diagnose(&DiagnoseConfig::default(), &fleet(8, 24, None), None);
        assert_eq!(d.clusters, vec![(0..8).collect::<Vec<_>>()]);
        assert!(d.is_uniform());
        assert_eq!(d.aligned_intervals, 24);
    }

    #[test]
    fn straggler_is_the_top_outlier_with_a_flagged_epoch() {
        let streams = fleet(8, 24, Some((5, 8..16)));
        let d = diagnose(&DiagnoseConfig::default(), &streams, None);
        assert!(!d.is_uniform());
        assert_eq!(d.outliers[0].node, 5);
        assert!(d.majority_nodes().len() >= 7);
        let (lo, hi) = d.outliers[0].flagged.expect("divergent epoch flagged");
        assert!(lo >= 8 && hi <= 15, "flagged ({lo},{hi}) inside injected 8..16");
        assert!(d.scores[5] > d.scores[0]);
    }

    #[test]
    fn telemetry_turns_outliers_into_attributed_hints() {
        let streams = fleet(4, 16, Some((2, 4..12)));
        let mut telemetry = vec![
            NodeTelemetry {
                remote_miss_share: 0.5,
                barrier_stall_share: 0.2,
                mem_stall_share: 0.3,
                ..NodeTelemetry::default()
            };
            4
        ];
        telemetry[2].mem_stall_share = 0.6;
        telemetry[2].barrier_stall_share = 0.02;
        let d = diagnose(&DiagnoseConfig::default(), &streams, Some(&telemetry));
        assert_eq!(d.outliers[0].node, 2);
        assert_eq!(d.outliers[0].hints[0].kind, HintKind::SlowdownEpoch);
    }
}
