//! Root-cause attribution: join an outlier node against per-node telemetry
//! counters and rank the plausible explanations.
//!
//! The engine itself never sees a fault plan or a placement policy — only
//! the counters a production registry would hold anyway. Every rule
//! compares the outlier's counter against the *median of the majority
//! cluster* (the behavioural baseline the clustering just established) and
//! scores the relative excess; rules that clear [`DiagnoseConfig::attr_rel`]
//! are emitted in score order with the supporting counter deltas attached,
//! and a node no rule can explain gets an explicit [`HintKind::Unknown`]
//! rather than a silent omission.

use serde::{Deserialize, Serialize};

use crate::DiagnoseConfig;

/// The ranked root-cause vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HintKind {
    /// The node itself ran slow (elevated memory-stall share with no
    /// remote-access skew): a transient slowdown epoch — DVFS dip, lagging
    /// NIC, co-scheduled daemon, or an injected straggler window.
    SlowdownEpoch,
    /// The node's remote-miss share is far above its peers': its working
    /// set lives on other nodes' homes.
    RemoteMissHotspot,
    /// Elevated degraded intervals / protocol retries: the node sits behind
    /// a faulty fabric path and its DDV gathers keep missing the deadline.
    FaultRetryStorm,
    /// The node's remote-miss share is far *below* peers running far more
    /// remote traffic — the classic serial-init + first-touch pathology
    /// where one node homes everyone's data.
    PlacementSkew,
    /// No rule cleared the threshold.
    Unknown,
}

impl HintKind {
    pub fn name(self) -> &'static str {
        match self {
            HintKind::SlowdownEpoch => "slowdown-epoch",
            HintKind::RemoteMissHotspot => "remote-miss-hotspot",
            HintKind::FaultRetryStorm => "fault-retry-storm",
            HintKind::PlacementSkew => "placement-skew",
            HintKind::Unknown => "unknown",
        }
    }
}

/// Per-node counters the attribution rules consume — all derivable from
/// the metrics registry / `SystemStats` of the run being diagnosed (shares
/// are ratios so machines of different length compare cleanly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// Remote-home share of L2 misses (`remote_home_misses / l2_misses`).
    pub remote_miss_share: f64,
    /// Share of cycles spent blocked at barriers/locks
    /// (`sync_wait_cycles / cycles`).
    pub barrier_stall_share: f64,
    /// Share of cycles exposed as memory stall (`mem_stall_cycles /
    /// cycles`).
    pub mem_stall_share: f64,
    /// Intervals whose DDS was classified degraded on this node.
    pub degraded_intervals: u64,
    /// Protocol retries attributed to this node's traffic.
    pub retries: u64,
    /// NACKs attributed to this node's traffic.
    pub nacks: u64,
    /// Reconfiguration events (DVFS transitions + page migrations) the
    /// adaptation layer applied while this node ran.
    pub reconfig_events: u64,
}

/// One ranked root-cause hypothesis with its supporting counter deltas
/// (`(counter name, outlier value − majority median)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hint {
    pub kind: HintKind,
    /// Relative excess over the majority baseline; higher = stronger.
    pub score: f64,
    pub evidence: Vec<(String, f64)>,
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Rank the plausible root causes for outlier `node` against the majority
/// cluster's telemetry baseline. Always returns at least one hint
/// ([`HintKind::Unknown`] when nothing clears the threshold).
pub fn attribute(
    cfg: &DiagnoseConfig,
    node: usize,
    telemetry: &[NodeTelemetry],
    majority: &[usize],
) -> Vec<Hint> {
    let own = telemetry[node];
    let peers: Vec<&NodeTelemetry> =
        majority.iter().filter(|&&m| m != node).map(|&m| &telemetry[m]).collect();
    if peers.is_empty() {
        return vec![Hint { kind: HintKind::Unknown, score: 0.0, evidence: Vec::new() }];
    }
    let med = |f: fn(&NodeTelemetry) -> f64| median(peers.iter().map(|t| f(t)).collect());
    let med_remote = med(|t| t.remote_miss_share);
    let med_barrier = med(|t| t.barrier_stall_share);
    let med_mem = med(|t| t.mem_stall_share);
    let med_degraded = med(|t| t.degraded_intervals as f64);
    let med_retries = med(|t| t.retries as f64);

    let mut hints: Vec<Hint> = Vec::new();

    // Fault/retry storm: this node's intervals keep degrading (its DDV rows
    // miss the collection deadline) or its traffic keeps retrying.
    let deg_excess = (own.degraded_intervals as f64 - med_degraded) / med_degraded.max(1.0);
    let retry_excess = (own.retries as f64 - med_retries) / med_retries.max(1.0);
    let storm = deg_excess.max(retry_excess);
    if storm > cfg.attr_rel {
        hints.push(Hint {
            kind: HintKind::FaultRetryStorm,
            score: storm,
            evidence: vec![
                ("degraded_intervals".into(), own.degraded_intervals as f64 - med_degraded),
                ("retries".into(), own.retries as f64 - med_retries),
                ("nacks".into(), own.nacks as f64),
            ],
        });
    }

    // Remote-miss hotspot: markedly more remote traffic than the peers.
    let remote_excess = (own.remote_miss_share - med_remote) / med_remote.max(0.05);
    if remote_excess > cfg.attr_rel {
        hints.push(Hint {
            kind: HintKind::RemoteMissHotspot,
            score: remote_excess,
            evidence: vec![
                ("remote_miss_share".into(), own.remote_miss_share - med_remote),
                ("mem_stall_share".into(), own.mem_stall_share - med_mem),
            ],
        });
    }

    // Placement skew: markedly *less* remote traffic than peers who are
    // paying heavily for remote homes — the data lives here.
    let placement = (med_remote - own.remote_miss_share) / med_remote.max(0.05);
    if placement > cfg.attr_rel && med_remote > 0.05 {
        hints.push(Hint {
            kind: HintKind::PlacementSkew,
            score: placement,
            evidence: vec![
                ("remote_miss_share".into(), own.remote_miss_share - med_remote),
                ("peer_remote_miss_share".into(), med_remote),
                ("reconfig_events".into(), own.reconfig_events as f64),
            ],
        });
    }

    // Slowdown epoch: the node's own memory stalls are elevated without a
    // remote-access explanation; peers waiting longer at barriers than the
    // laggard corroborates (they idle while it catches up).
    let mem_excess = (own.mem_stall_share - med_mem) / med_mem.max(0.05);
    if mem_excess > cfg.attr_rel && remote_excess <= cfg.attr_rel {
        hints.push(Hint {
            kind: HintKind::SlowdownEpoch,
            score: mem_excess,
            evidence: vec![
                ("mem_stall_share".into(), own.mem_stall_share - med_mem),
                ("peer_barrier_stall_share".into(), med_barrier - own.barrier_stall_share),
            ],
        });
    }

    if hints.is_empty() {
        return vec![Hint { kind: HintKind::Unknown, score: 0.0, evidence: Vec::new() }];
    }
    // Strongest first; equal scores rank by kind order for determinism.
    hints.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("finite").then(a.kind.cmp(&b.kind))
    });
    hints
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NodeTelemetry {
        NodeTelemetry {
            remote_miss_share: 0.6,
            barrier_stall_share: 0.1,
            mem_stall_share: 0.3,
            degraded_intervals: 0,
            retries: 0,
            nacks: 0,
            reconfig_events: 0,
        }
    }

    #[test]
    fn slow_node_attributes_to_slowdown_epoch() {
        let mut t = vec![base(); 4];
        t[2].mem_stall_share = 0.55; // self slow
        t[2].barrier_stall_share = 0.02; // everyone else waits for it
        let hints = attribute(&DiagnoseConfig::default(), 2, &t, &[0, 1, 3]);
        assert_eq!(hints[0].kind, HintKind::SlowdownEpoch);
        assert!(hints[0].score > 0.5);
        assert!(hints[0].evidence.iter().any(|(n, v)| n == "mem_stall_share" && *v > 0.2));
    }

    #[test]
    fn remote_heavy_node_attributes_to_hotspot() {
        let mut t = vec![base(); 4];
        t[1].remote_miss_share = 0.95;
        t[1].mem_stall_share = 0.5;
        let hints = attribute(&DiagnoseConfig::default(), 1, &t, &[0, 2, 3]);
        assert_eq!(hints[0].kind, HintKind::RemoteMissHotspot);
    }

    #[test]
    fn data_home_node_attributes_to_placement_skew() {
        let mut t = vec![base(); 4];
        for p in t.iter_mut().skip(1) {
            p.remote_miss_share = 0.9; // peers all miss remotely…
        }
        t[0].remote_miss_share = 0.05; // …into node 0's memory
        let hints = attribute(&DiagnoseConfig::default(), 0, &t, &[1, 2, 3]);
        assert_eq!(hints[0].kind, HintKind::PlacementSkew);
    }

    #[test]
    fn degraded_storm_attributes_to_fault_retry_storm() {
        let mut t = vec![base(); 4];
        t[3].degraded_intervals = 40;
        t[3].retries = 12;
        let hints = attribute(&DiagnoseConfig::default(), 3, &t, &[0, 1, 2]);
        assert_eq!(hints[0].kind, HintKind::FaultRetryStorm);
    }

    #[test]
    fn unremarkable_outlier_is_unknown() {
        let t = vec![base(); 4];
        let hints = attribute(&DiagnoseConfig::default(), 1, &t, &[0, 2, 3]);
        assert_eq!(hints, vec![Hint { kind: HintKind::Unknown, score: 0.0, evidence: vec![] }]);
    }
}
