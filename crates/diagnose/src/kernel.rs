//! The phase-sequence distance kernel.
//!
//! In an SPMD run every node should traverse the same phase sequence at
//! roughly the same time, so cross-node *disagreement* between classified
//! streams is the diagnostic signal. Phase ids are assigned per node in
//! first-appearance order by the footprint table, so two nodes' raw ids are
//! not comparable; [`canonical_phases`] renumbers each stream by first
//! appearance, after which "same phase structure" means "same canonical
//! sequence".
//!
//! The pairwise distance combines three bounded terms, each in `[0, 1]`:
//!
//! * **phase** — time-aligned canonical-id disagreement, degraded intervals
//!   down-weighted (their classification fell back to BBV-only and is less
//!   trustworthy);
//! * **cpi** — symmetric relative divergence of *phase-normalized* CPI:
//!   each side's per-interval CPI is divided by the median CPI of the
//!   same canonical phase on the same node (within the aligned slice)
//!   before comparison. This leans on the paper's core premise — a phase
//!   id names homogeneous behaviour, so on a healthy node every instance
//!   of a phase runs at about the same CPI and the residual is ≈1
//!   everywhere. A slowed node keeps its phase ids (intervals are
//!   instruction-counted, so the BBV/DDV signature is unchanged) but its
//!   in-epoch instances run slower than its out-of-epoch instances of the
//!   *same* phase — the residual rises exactly where the fault is.
//!   Normalizing per phase rather than per stream matters on real
//!   captures: nodes legitimately run different phase schedules at very
//!   different absolute CPI (boundary processors, asymmetric work
//!   partitions), and raw or stream-level comparison flags that
//!   structural spread instead of the temporal anomaly. The flip side is
//!   deliberate: a slowdown covering *every* instance of a phase
//!   normalizes itself away — with no fast instance to contrast against,
//!   phase-conditioned evidence does not exist;
//! * **lag** — an edit-style alignment term: the best shift `s*` within
//!   `±max_lag` that minimizes canonical disagreement, scored as half the
//!   normalized shift magnitude plus half the residual disagreement. A node
//!   running the right phases *late* is penalized in proportion to how late.

use dsm_phase::stream::PhaseStream;
use dsm_phase::ClassifiedInterval;

use crate::DiagnoseConfig;

/// Renumber a stream's phase ids in first-appearance order, making
/// sequences comparable across nodes.
pub fn canonical_phases(intervals: &[ClassifiedInterval]) -> Vec<u32> {
    let mut map: Vec<u32> = Vec::new();
    intervals
        .iter()
        .map(|c| match map.iter().position(|&p| p == c.phase_id) {
            Some(i) => i as u32,
            None => {
                map.push(c.phase_id);
                (map.len() - 1) as u32
            }
        })
        .collect()
}

/// One pairwise distance, with its terms exposed for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairDistance {
    /// Weighted combination of the three terms, in `[0, 1]`.
    pub total: f64,
    /// Time-aligned phase disagreement.
    pub phase: f64,
    /// Symmetric relative CPI divergence.
    pub cpi: f64,
    /// Lag term (shift magnitude + residual disagreement).
    pub lag: f64,
    /// The best alignment shift found (positive: `b` runs behind `a`).
    pub shift: i64,
}

impl PairDistance {
    fn zero() -> Self {
        Self { total: 0.0, phase: 0.0, cpi: 0.0, lag: 0.0, shift: 0 }
    }

    fn max(cfg: &DiagnoseConfig) -> Self {
        let mut d = Self { total: 0.0, phase: 1.0, cpi: 1.0, lag: 1.0, shift: 0 };
        d.total = cfg.combine(1.0, 1.0, 1.0);
        d
    }
}

impl DiagnoseConfig {
    /// Fold the three term scores into the total under the configured
    /// weights.
    pub(crate) fn combine(&self, phase: f64, cpi: f64, lag: f64) -> f64 {
        let w = self.phase_weight + self.cpi_weight + self.lag_weight;
        if w == 0.0 {
            return 0.0;
        }
        (self.phase_weight * phase + self.cpi_weight * cpi + self.lag_weight * lag) / w
    }
}

#[inline]
fn interval_weight(cfg: &DiagnoseConfig, c: &ClassifiedInterval) -> f64 {
    if c.degraded {
        cfg.degraded_weight
    } else {
        1.0
    }
}

/// Median of a value list, floored away from zero. Deterministic: ties and
/// even lengths resolve by value, not input order.
fn median_floor(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let n = v.len();
    let med = if n == 0 {
        0.0
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    };
    med.max(1e-9)
}

/// Per-interval phase-normalized CPI residuals: each interval's CPI divided
/// by the median CPI of its canonical phase within this slice. On a healthy
/// node the residual is ≈1 everywhere (a phase id names homogeneous
/// behaviour); a slowdown epoch pushes in-epoch instances above their
/// phase's median.
pub(crate) fn cpi_residuals(intervals: &[ClassifiedInterval], canon: &[u32]) -> Vec<f64> {
    let n_phases = canon.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut by_phase: Vec<Vec<f64>> = vec![Vec::new(); n_phases];
    for (c, &p) in intervals.iter().zip(canon) {
        by_phase[p as usize].push(c.cpi);
    }
    // A phase seen once has no self-contrast: its lone CPI is its own
    // scale, so its residual is exactly 1 — singleton phases are quiet
    // rather than noisy. (Falling back to a stream-wide scale instead
    // re-imports exactly the structural level spread this normalization
    // exists to remove.)
    let scales: Vec<f64> = by_phase.into_iter().map(median_floor).collect();
    intervals.iter().zip(canon).map(|(c, &p)| c.cpi / scales[p as usize]).collect()
}

/// Unweighted canonical disagreement of `a` shifted onto `b` by `shift`
/// (compare `a[i]` with `b[i + shift]` over the overlap). Returns 1.0 when
/// the shift leaves no overlap.
fn shifted_mismatch(ca: &[u32], cb: &[u32], shift: i64) -> f64 {
    let (a_start, b_start) = if shift >= 0 { (0usize, shift as usize) } else { ((-shift) as usize, 0usize) };
    let n = (ca.len().saturating_sub(a_start)).min(cb.len().saturating_sub(b_start));
    if n == 0 {
        return 1.0;
    }
    let mismatches = (0..n).filter(|&i| ca[a_start + i] != cb[b_start + i]).count();
    mismatches as f64 / n as f64
}

/// Distance between two interval slices assumed aligned at position 0
/// (callers align by true interval index first — see [`pair_distance`]).
pub fn slice_distance(
    cfg: &DiagnoseConfig,
    a: &[ClassifiedInterval],
    b: &[ClassifiedInterval],
) -> PairDistance {
    if a.is_empty() && b.is_empty() {
        return PairDistance::zero();
    }
    if a.is_empty() || b.is_empty() {
        return PairDistance::max(cfg);
    }
    let ca = canonical_phases(a);
    let cb = canonical_phases(b);
    let n = a.len().min(b.len());

    // Time-aligned phase + CPI terms, degraded intervals down-weighted.
    // CPI is compared as phase-normalized residuals on each side.
    let (ra, rb) = (cpi_residuals(a, &ca), cpi_residuals(b, &cb));
    let mut wsum = 0.0;
    let mut phase_acc = 0.0;
    let mut cpi_acc = 0.0;
    for i in 0..n {
        let w = interval_weight(cfg, &a[i]) * interval_weight(cfg, &b[i]);
        wsum += w;
        if ca[i] != cb[i] {
            phase_acc += w;
        }
        let (x, y) = (ra[i], rb[i]);
        let denom = x + y;
        if denom > 0.0 {
            let raw = (x - y).abs() / denom;
            // Deadband: only divergence beyond the configured floor counts,
            // rescaled so the term stays in [0, 1].
            let db = cfg.cpi_deadband.clamp(0.0, 0.999);
            cpi_acc += w * ((raw - db).max(0.0) / (1.0 - db));
        }
    }
    let (phase, cpi) = if wsum > 0.0 { (phase_acc / wsum, cpi_acc / wsum) } else { (0.0, 0.0) };

    // Lag term: best shift in ±max_lag by (residual, |shift|, shift) —
    // the lexicographic tie-break keeps the choice deterministic.
    let (mut best_shift, mut best_res) = (0i64, shifted_mismatch(&ca, &cb, 0));
    for mag in 1..=cfg.max_lag as i64 {
        for s in [mag, -mag] {
            let res = shifted_mismatch(&ca, &cb, s);
            if res < best_res {
                best_res = res;
                best_shift = s;
            }
        }
    }
    let lag = if cfg.max_lag == 0 {
        best_res
    } else {
        0.5 * best_shift.unsigned_abs() as f64 / cfg.max_lag as f64 + 0.5 * best_res
    };

    PairDistance { total: cfg.combine(phase, cpi, lag), phase, cpi, lag, shift: best_shift }
}

/// The slice of `s` covering true interval indices `[lo, hi)` (clamped to
/// what the stream retains).
fn range_slice(s: &PhaseStream, lo: u64, hi: u64) -> &[ClassifiedInterval] {
    let lo = lo.max(s.first_index()).min(s.next_index());
    let hi = hi.max(lo).min(s.next_index());
    &s.intervals()[(lo - s.first_index()) as usize..(hi - s.first_index()) as usize]
}

/// Distance between two streams, aligned on their common true-index range
/// (windowed streams compare only what both retain).
pub fn pair_distance(cfg: &DiagnoseConfig, a: &PhaseStream, b: &PhaseStream) -> PairDistance {
    let lo = a.first_index().max(b.first_index());
    let hi = a.next_index().min(b.next_index());
    if lo >= hi {
        return if a.is_empty() && b.is_empty() {
            PairDistance::zero()
        } else {
            PairDistance::max(cfg)
        };
    }
    slice_distance(cfg, range_slice(a, lo, hi), range_slice(b, lo, hi))
}

/// Full symmetric distance matrix over the fleet (diagonal zero).
pub fn distance_matrix(cfg: &DiagnoseConfig, streams: &[PhaseStream]) -> Vec<Vec<f64>> {
    let n = streams.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = pair_distance(cfg, &streams[i], &streams[j]).total;
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(proc: usize, index: u64, phase_id: u32, cpi: f64, degraded: bool) -> ClassifiedInterval {
        ClassifiedInterval { proc, index, phase_id, is_new_phase: false, cpi, degraded }
    }

    fn stream(node: usize, phases: &[u32], cpi: f64) -> PhaseStream {
        PhaseStream::from_intervals(
            node,
            phases
                .iter()
                .enumerate()
                .map(|(i, &p)| ci(node, i as u64, p, cpi, false))
                .collect(),
        )
    }

    #[test]
    fn canonicalization_makes_label_choice_irrelevant() {
        // Same structure, different raw label alphabets.
        let a = stream(0, &[3, 3, 9, 3, 7], 1.0);
        let b = stream(1, &[0, 0, 5, 0, 2], 1.0);
        let d = pair_distance(&DiagnoseConfig::default(), &a, &b);
        assert_eq!(d.total, 0.0, "{d:?}");
    }

    #[test]
    fn identical_streams_are_distance_zero_and_divergent_ones_are_not() {
        let cfg = DiagnoseConfig::default();
        let a = stream(0, &[0, 0, 1, 1, 2, 2], 1.0);
        let same = stream(1, &[5, 5, 6, 6, 7, 7], 1.0);
        let other = stream(2, &[0, 1, 0, 1, 0, 1], 1.0);
        assert_eq!(pair_distance(&cfg, &a, &same).total, 0.0);
        assert!(pair_distance(&cfg, &a, &other).total > 0.1);
    }

    #[test]
    fn cpi_divergence_alone_is_visible() {
        // Same phases, one node triples its CPI over a minority epoch: the
        // slowdown signature.
        let cfg = DiagnoseConfig::default();
        let phases = [0u32, 0, 1, 1, 0, 0];
        let a = stream(0, &phases, 1.0);
        let slow = PhaseStream::from_intervals(
            1,
            phases
                .iter()
                .enumerate()
                .map(|(i, &p)| ci(1, i as u64, p, if i >= 4 { 3.0 } else { 1.0 }, false))
                .collect(),
        );
        let d = pair_distance(&cfg, &a, &slow);
        assert_eq!(d.phase, 0.0);
        assert!(d.cpi > 0.1, "{d:?}");
    }

    #[test]
    fn uniform_cpi_level_differences_are_structure_not_anomaly() {
        // A node running the same phases at a flat 2x CPI normalizes to the
        // same shape: level differences across nodes are legitimate (work
        // partitions differ), only excursions count.
        let cfg = DiagnoseConfig::default();
        let a = stream(0, &[0, 0, 1, 1], 1.0);
        let flat_slow = stream(1, &[0, 0, 1, 1], 2.0);
        let d = pair_distance(&cfg, &a, &flat_slow);
        assert_eq!(d.total, 0.0, "{d:?}");
    }

    #[test]
    fn lag_is_scored_by_best_shift() {
        let cfg = DiagnoseConfig::default();
        let a = stream(0, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 1.0);
        // b runs the same distinct sequence two intervals late.
        let b = stream(1, &[0, 0, 0, 1, 2, 3, 4, 5, 6, 7], 1.0);
        let d = pair_distance(&cfg, &a, &b);
        assert_eq!(d.shift, 2, "{d:?}");
        let further = stream(2, &[0, 0, 0, 0, 0, 1, 2, 3, 4, 5], 1.0);
        let d4 = pair_distance(&cfg, &a, &further);
        assert_eq!(d4.shift, 4);
        assert!(d4.lag > d.lag, "wider lag must score higher");
    }

    #[test]
    fn degraded_intervals_are_down_weighted() {
        let cfg = DiagnoseConfig::default();
        let mk = |degraded: bool| {
            PhaseStream::from_intervals(
                0,
                (0..8u64)
                    .map(|i| ci(0, i, if i == 3 { 9 } else { 0 }, 1.0, degraded && i == 3))
                    .collect(),
            )
        };
        let clean_ref = stream(1, &[0, 0, 0, 0, 0, 0, 0, 0], 1.0);
        let d_clean = pair_distance(&cfg, &mk(false), &clean_ref).total;
        let d_degr = pair_distance(&cfg, &mk(true), &clean_ref).total;
        assert!(d_degr < d_clean, "degraded disagreement must count less: {d_degr} vs {d_clean}");
        assert!(d_degr > 0.0);
    }

    #[test]
    fn windowed_streams_compare_on_the_common_range() {
        let cfg = DiagnoseConfig::default();
        let mut a = stream(0, &[0, 1, 2, 3, 4, 5], 1.0);
        let b = stream(1, &[0, 1, 2, 3, 4, 5], 1.0);
        a.evict_to(3); // a retains [3, 6), b retains [0, 6)
        assert_eq!(pair_distance(&cfg, &a, &b).total, 0.0);
        // Disjoint ranges: maximal distance (nothing comparable).
        let mut c = stream(2, &[0, 1, 2, 3, 4, 5], 1.0);
        c.evict_to(6);
        assert_eq!(pair_distance(&cfg, &a, &c).total, cfg.combine(1.0, 1.0, 1.0));
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let cfg = DiagnoseConfig::default();
        let streams = vec![
            stream(0, &[0, 1, 2], 1.0),
            stream(1, &[0, 1, 1], 1.2),
            stream(2, &[2, 2, 2], 0.8),
        ];
        let m = distance_matrix(&cfg, &streams);
        for i in 0..3 {
            assert_eq!(m[i][i], 0.0);
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
        assert!(m[0][1] > 0.0);
    }
}
