//! Deterministic agglomerative clustering over the pairwise distance
//! matrix, outlier scoring, and divergent-range flagging.
//!
//! The framing follows the similarity-analysis approach to SPMD performance
//! debugging: cluster the nodes by behavioural similarity, call the largest
//! cluster "how the program behaves", and treat everything outside it as an
//! anomaly to be explained. Average-linkage merging with lexicographic
//! tie-breaks (smallest minimum node id first) makes the dendrogram — and
//! therefore the diagnosis — a pure function of the distance matrix.

use dsm_phase::stream::PhaseStream;
use dsm_phase::ClassifiedInterval;

use crate::kernel::canonical_phases;
use crate::DiagnoseConfig;

/// Average-linkage distance between two clusters.
fn linkage(dist: &[Vec<f64>], a: &[usize], b: &[usize]) -> f64 {
    let mut sum = 0.0;
    for &i in a {
        for &j in b {
            sum += dist[i][j];
        }
    }
    sum / (a.len() * b.len()) as f64
}

/// Agglomerative average-linkage clustering: start from singletons, merge
/// the closest pair while its linkage stays within `threshold`. Clusters
/// are kept (and returned) sorted by minimum node id, members ascending —
/// merge order is deterministic by construction.
pub fn cluster(dist: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let n = dist.len();
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > 1 {
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = linkage(dist, &clusters[i], &clusters[j]);
                // Strict < keeps the lexicographically first minimal pair
                // (clusters are ordered by min node id).
                if best.map_or(true, |(bd, _, _)| d < bd) {
                    best = Some((d, i, j));
                }
            }
        }
        let Some((d, i, j)) = best else { break };
        if d > threshold {
            break;
        }
        let absorbed = clusters.remove(j);
        clusters[i].extend(absorbed);
        clusters[i].sort_unstable();
        clusters.sort_by_key(|c| c[0]);
    }
    clusters
}

/// Index (into `clusters`) of the majority cluster: the largest, ties going
/// to the one containing the smallest node id.
pub fn majority_index(clusters: &[Vec<usize>]) -> usize {
    let mut best = 0;
    for (i, c) in clusters.iter().enumerate().skip(1) {
        if c.len() > clusters[best].len() {
            best = i;
        }
    }
    best
}

/// Per-node outlier score: mean distance to every *other* node. A fleet of
/// one scores zero.
pub fn outlier_scores(dist: &[Vec<f64>]) -> Vec<f64> {
    let n = dist.len();
    (0..n)
        .map(|i| {
            if n <= 1 {
                0.0
            } else {
                dist[i].iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &d)| d).sum::<f64>()
                    / (n - 1) as f64
            }
        })
        .collect()
}

fn median(values: &mut Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// The inclusive true-interval-index range `[first, last]` over which
/// `node`'s stream diverges from the majority's consensus, or `None` if no
/// aligned interval diverges.
///
/// Divergence at an aligned position means disagreeing with the majority's
/// canonical phase mode, or a relative deviation of the *phase-normalized
/// CPI residual* (each interval's CPI over the median CPI of its phase on
/// its own node, matching the distance kernel) from
/// the majority median beyond `cpi_flag_rel`. The flagged range is the longest divergent
/// run, tolerating interior clean gaps of up to `gap_tolerance` intervals
/// (a slowdown epoch is a contiguous stretch of wall time, but barrier
/// alignment can briefly re-synchronize the CPI mid-epoch).
pub fn flagged_range(
    cfg: &DiagnoseConfig,
    streams: &[PhaseStream],
    node: usize,
    majority: &[usize],
) -> Option<(u64, u64)> {
    let peers: Vec<usize> = majority.iter().copied().filter(|&m| m != node).collect();
    if peers.is_empty() {
        return None;
    }
    // Common true-index range across the node and all peers.
    let mut lo = streams[node].first_index();
    let mut hi = streams[node].next_index();
    for &p in &peers {
        lo = lo.max(streams[p].first_index());
        hi = hi.min(streams[p].next_index());
    }
    if lo >= hi {
        return None;
    }
    let slice = |s: &PhaseStream| -> Vec<ClassifiedInterval> {
        let f = s.first_index();
        s.intervals()[(lo - f) as usize..(hi - f) as usize].to_vec()
    };
    let own = slice(&streams[node]);
    let own_canon = canonical_phases(&own);
    let own_res = crate::kernel::cpi_residuals(&own, &own_canon);
    let peer_slices: Vec<Vec<ClassifiedInterval>> = peers.iter().map(|&p| slice(&streams[p])).collect();
    let peer_canons: Vec<Vec<u32>> = peer_slices.iter().map(|s| canonical_phases(s)).collect();
    let peer_res: Vec<Vec<f64>> = peer_slices
        .iter()
        .zip(&peer_canons)
        .map(|(s, c)| crate::kernel::cpi_residuals(s, c))
        .collect();

    let n = (hi - lo) as usize;
    let divergent: Vec<bool> = (0..n)
        .map(|t| {
            // Majority phase mode at t (tie → smallest canonical id).
            let mut ids: Vec<u32> = peer_canons.iter().map(|c| c[t]).collect();
            ids.sort_unstable();
            let mut mode = ids[0];
            let mut mode_count = 0usize;
            let mut k = 0usize;
            while k < ids.len() {
                let run = ids[k..].iter().take_while(|&&x| x == ids[k]).count();
                if run > mode_count {
                    mode_count = run;
                    mode = ids[k];
                }
                k += run;
            }
            if own_canon[t] != mode {
                return true;
            }
            let mut res: Vec<f64> = peer_res.iter().map(|r| r[t]).collect();
            let med = median(&mut res);
            (own_res[t] - med).abs() > cfg.cpi_flag_rel * med.max(1e-9)
        })
        .collect();

    // Longest divergent run, tolerating clean gaps up to `gap_tolerance`
    // between divergent intervals (never at the ends). Earliest run wins
    // ties.
    let mut best: Option<(usize, usize)> = None; // (start, end) inclusive
    let mut t = 0usize;
    while t < n {
        if !divergent[t] {
            t += 1;
            continue;
        }
        let start = t;
        let mut end = t;
        // Extend to the next divergent index while at most `gap_tolerance`
        // clean intervals separate it from the current run end.
        while let Some(u) =
            (end + 1..(end + cfg.gap_tolerance + 2).min(n)).find(|&u| divergent[u])
        {
            end = u;
        }
        if best.map_or(true, |(s, e)| end - start > e - s) {
            best = Some((start, end));
        }
        t = end + 1;
    }
    best.map(|(s, e)| (lo + s as u64, lo + e as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(proc: usize, index: u64, phase_id: u32, cpi: f64) -> ClassifiedInterval {
        ClassifiedInterval { proc, index, phase_id, is_new_phase: false, cpi, degraded: false }
    }

    // One recurring phase throughout: the phase-conditioned CPI residual
    // then contrasts each interval against the node's whole-stream median.
    fn stream(node: usize, cpis: &[f64]) -> PhaseStream {
        PhaseStream::from_intervals(
            node,
            cpis.iter().enumerate().map(|(i, &c)| ci(node, i as u64, 0, c)).collect(),
        )
    }

    #[test]
    fn clustering_separates_an_outlier_and_is_deterministic() {
        // Nodes 0..3 close, node 4 far from everyone.
        let mut dist = vec![vec![0.0; 5]; 5];
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    dist[i][j] = if i == 4 || j == 4 { 0.8 } else { 0.02 };
                }
            }
        }
        let c = cluster(&dist, 0.2);
        assert_eq!(c, vec![vec![0, 1, 2, 3], vec![4]]);
        assert_eq!(majority_index(&c), 0);
        let scores = outlier_scores(&dist);
        assert!(scores[4] > scores[0]);
        assert_eq!(cluster(&dist, 0.2), c, "re-run must agree");
    }

    #[test]
    fn tie_breaks_favor_smallest_node_ids() {
        // Two equidistant pairs: (0,1) and (2,3) at the same linkage.
        let mut dist = vec![vec![0.5; 4]; 4];
        for i in 0..4 {
            dist[i][i] = 0.0;
        }
        dist[0][1] = 0.1;
        dist[1][0] = 0.1;
        dist[2][3] = 0.1;
        dist[3][2] = 0.1;
        let c = cluster(&dist, 0.1);
        assert_eq!(c, vec![vec![0, 1], vec![2, 3]]);
        // Equal sizes: majority is the cluster with the smallest node id.
        assert_eq!(majority_index(&c), 0);
    }

    #[test]
    fn flagged_range_finds_the_slow_epoch() {
        let cfg = DiagnoseConfig::default();
        // Nodes 0..2 steady at CPI 1.0; node 3 doubles over intervals 4..=7.
        let base = vec![1.0; 12];
        let mut slow = base.clone();
        for c in slow.iter_mut().take(8).skip(4) {
            *c = 2.2;
        }
        let streams = vec![stream(0, &base), stream(1, &base), stream(2, &base), stream(3, &slow)];
        let r = flagged_range(&cfg, &streams, 3, &[0, 1, 2]);
        assert_eq!(r, Some((4, 7)));
        assert_eq!(flagged_range(&cfg, &streams, 0, &[1, 2]), None, "clean node unflagged");
    }

    #[test]
    fn flagged_range_tolerates_interior_gaps() {
        let cfg = DiagnoseConfig::default();
        let base = vec![1.0; 12];
        let mut slow = base.clone();
        // Divergent at 2..=3 and 6..=8 with a 2-interval clean gap — within
        // the default tolerance, so one run; intervals 4..5 clean. The
        // divergent set stays a minority so the node's own median (its
        // normalization scale) remains the clean baseline.
        for i in [2, 3, 6, 7, 8] {
            slow[i] = 2.5;
        }
        let streams = vec![stream(0, &base), stream(1, &base), stream(2, &slow)];
        assert_eq!(flagged_range(&cfg, &streams, 2, &[0, 1]), Some((2, 8)));
    }
}
