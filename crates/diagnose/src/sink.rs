//! The online consumer: a windowed sink over a live classified-interval
//! stream.
//!
//! [`DiagnosisSink`] is what `dsm-serve` attaches to a tenant: it observes
//! each [`ClassifiedInterval`] *at classification time* (not at drain time
//! — a stalled output buffer must never skew the diagnosis window), keeps
//! the most recent `window` intervals per node index-aligned via
//! [`PhaseStream`], and answers [`DiagnosisSink::diagnose`] on demand by
//! running the exact offline engine over the retained window. With a window
//! at least as long as the stream, the online verdict is *identical* to the
//! offline pass by construction — the differential suite pins this.

use dsm_phase::stream::PhaseStream;
use dsm_phase::ClassifiedInterval;

use crate::{diagnose, Diagnosis, DiagnoseConfig, NodeTelemetry};

/// Windowed per-node similarity state over a live stream.
#[derive(Debug, Clone)]
pub struct DiagnosisSink {
    cfg: DiagnoseConfig,
    window: usize,
    streams: Vec<PhaseStream>,
    observed: u64,
    realigns: u64,
}

impl DiagnosisSink {
    /// A sink for `n_nodes` nodes retaining the last `window` intervals per
    /// node. `window` must be nonzero (a zero window diagnoses nothing).
    pub fn new(n_nodes: usize, window: usize, cfg: DiagnoseConfig) -> Self {
        assert!(window > 0, "diagnosis window must be nonzero");
        Self {
            cfg,
            window,
            streams: (0..n_nodes).map(PhaseStream::new).collect(),
            observed: 0,
            realigns: 0,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.streams.len()
    }

    pub fn window(&self) -> usize {
        self.window
    }

    /// Intervals observed so far (across all nodes).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Times an observation arrived with a non-consecutive interval index
    /// and the node's window had to be re-anchored. Zero on a correct
    /// producer — the serve regression suite asserts exactly that through
    /// output-buffer stalls.
    pub fn realigns(&self) -> u64 {
        self.realigns
    }

    /// The retained window of one node.
    pub fn stream(&self, node: usize) -> &PhaseStream {
        &self.streams[node]
    }

    /// Observe one classified interval. Intervals must arrive in index
    /// order per node (the serve batch path guarantees this); an
    /// out-of-order arrival is counted in [`realigns`](Self::realigns) and
    /// the node's window restarts at the new index rather than silently
    /// mixing misaligned history.
    pub fn observe(&mut self, c: &ClassifiedInterval) {
        let s = &mut self.streams[c.proc];
        if s.push(c.clone()).is_err() {
            self.realigns += 1;
            *s = PhaseStream::new(c.proc);
            s.push(c.clone()).expect("fresh stream accepts any first index");
        }
        s.truncate_front(self.window);
        self.observed += 1;
    }

    /// Run the engine over the retained windows. `telemetry`, when
    /// available, must be indexed by node like the streams.
    pub fn diagnose(&self, telemetry: Option<&[NodeTelemetry]>) -> Diagnosis {
        diagnose(&self.cfg, &self.streams, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(proc: usize, index: u64, phase_id: u32, cpi: f64) -> ClassifiedInterval {
        ClassifiedInterval { proc, index, phase_id, is_new_phase: false, cpi, degraded: false }
    }

    #[test]
    fn windowed_online_matches_offline_when_window_covers_stream() {
        let cfg = DiagnoseConfig::default();
        let mut sink = DiagnosisSink::new(3, 64, cfg.clone());
        let mut offline: Vec<Vec<ClassifiedInterval>> = vec![Vec::new(); 3];
        for i in 0..20u64 {
            for p in 0..3usize {
                // Node 2 runs 60% slower over a mid-stream epoch.
                let cpi = if p == 2 && (8..14).contains(&i) { 1.6 } else { 1.0 };
                let c = ci(p, i, (i / 4) as u32, cpi);
                sink.observe(&c);
                offline[p].push(c);
            }
        }
        let streams: Vec<PhaseStream> = offline
            .into_iter()
            .enumerate()
            .map(|(p, v)| PhaseStream::from_intervals(p, v))
            .collect();
        let online = sink.diagnose(None);
        let off = diagnose(&cfg, &streams, None);
        assert_eq!(online, off);
        assert_eq!(sink.realigns(), 0);
        assert_eq!(sink.observed(), 60);
    }

    #[test]
    fn window_bounds_memory_and_stays_index_aligned() {
        let mut sink = DiagnosisSink::new(2, 8, DiagnoseConfig::default());
        for i in 0..50u64 {
            sink.observe(&ci(0, i, 0, 1.0));
            sink.observe(&ci(1, i, 0, 1.0));
        }
        assert_eq!(sink.stream(0).len(), 8);
        assert_eq!(sink.stream(0).first_index(), 42);
        assert_eq!(sink.stream(0).next_index(), 50);
    }

    #[test]
    fn out_of_order_observation_realigns_instead_of_corrupting() {
        let mut sink = DiagnosisSink::new(1, 8, DiagnoseConfig::default());
        sink.observe(&ci(0, 0, 0, 1.0));
        sink.observe(&ci(0, 1, 0, 1.0));
        sink.observe(&ci(0, 5, 0, 1.0)); // gap
        assert_eq!(sink.realigns(), 1);
        assert_eq!(sink.stream(0).first_index(), 5);
        sink.observe(&ci(0, 6, 0, 1.0));
        assert_eq!(sink.realigns(), 1);
        assert_eq!(sink.stream(0).len(), 2);
    }
}
