//! Property tests for the `DSMCKPT5` checkpoint codec: decoding is *total*
//! (any input — random bytes, corrupted checkpoints, truncations — yields a
//! typed error or a valid checkpoint, never a panic), and the encoding is
//! canonical (whatever decodes re-encodes to the identical bytes).

use proptest::prelude::*;

use dsm_adapt::{AdaptSnap, Decision, DecisionKind, ObservedInterval, PhaseSnap, PhaseStateSnap};
use dsm_phase::ddv::{DdvSnap, FrequencySnap};
use dsm_phase::detector::{CollectorState, DetectorGeometry, IntervalRecord};
use dsm_sim::config::{CoreConfig, FaultPlan};
use dsm_sim::reconfig::{ReconfigSnap, ReconfigStats};
use dsm_sim::directory::{DirState, DirectoryStats};
use dsm_sim::event::Event;
use dsm_sim::state::{
    BarrierSnap, CacheState, DirectoryState, FaultSnap, GshareState, HomeMapState, LockSnap,
    MemCtrlState, NetworkState, ProcessorState, SystemState,
};
use dsm_sim::topology::TopologyKind;
use dsm_sim::util::splitmix64;
use dsm_sim::ProcStats;
use dsm_simpoint::{Checkpoint, CheckpointMeta, MAGIC};
use dsm_workloads::{App, Scale};

/// Deterministic value stream for synthesizing checkpoint contents.
struct Gen(u64);

impl Gen {
    fn u(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }
    fn vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.u() % 10_000).collect()
    }
}

/// Build a structurally valid checkpoint whose every field is derived from
/// `seed`; `n_procs` and `n_recs` vary the shape.
fn synth(seed: u64, n_procs: usize, n_recs: usize) -> Checkpoint {
    let mut g = Gen(seed);
    let cache = |g: &mut Gen| CacheState {
        tags: g.vec(4),
        lru: g.vec(4),
        clock: g.u(),
        hits: g.u(),
        misses: g.u(),
    };
    let procs: Vec<ProcessorState> = (0..n_procs)
        .map(|_| ProcessorState {
            cycle: g.u(),
            commit_carry: g.u() % 6,
            fp_carry: g.u() % 4,
            interval_progress: g.u() % 1000,
            interval_start_cycle: g.u(),
            interval_index: g.u() % 64,
            finished: g.u().is_multiple_of(4),
            blocked: g.u().is_multiple_of(3),
            blocked_since: g.u(),
            stats: ProcStats {
                cycles: g.u(),
                insns: g.u(),
                l1_misses: g.u(),
                ..Default::default()
            },
            l1: cache(&mut g),
            l2: cache(&mut g),
            gshare: GshareState {
                table: (0..8).map(|_| (g.u() % 4) as u8).collect(),
                history: g.u(),
                predictions: g.u(),
                mispredictions: g.u(),
            },
            core: CoreConfig {
                commit_width: 1 + (g.u() % 8) as u32,
                fpu_units: 1 + (g.u() % 4) as u32,
                mispredict_penalty: 1 + g.u() % 20,
                gshare_entries: 4,
                stall_exposure_num: 50 + g.u() % 100,
            },
        })
        .collect();
    let events = [
        Event::Block { bb: 3, insns: 17, taken: true },
        Event::Mem { addr: 0x1234, write: false },
        Event::Fp { ops: 4 },
        Event::Barrier { id: 2 },
        Event::Acquire { lock: 1 },
        Event::Release { lock: 1 },
        Event::End,
    ];
    let pending: Vec<Option<Event>> = (0..n_procs)
        .map(|_| {
            let r = g.u() as usize;
            if r.is_multiple_of(3) {
                None
            } else {
                Some(events[r % events.len()])
            }
        })
        .collect();
    let records: Vec<Vec<IntervalRecord>> = (0..n_procs)
        .map(|p| {
            (0..n_recs)
                .map(|i| IntervalRecord {
                    proc: p,
                    index: i as u64,
                    insns: g.u() % 100_000,
                    cycles: g.u() % 1_000_000,
                    bbv: (0..4).map(|_| (g.u() % 1000) as f64 / 1000.0).collect(),
                    fvec: g.vec(n_procs),
                    cvec: g.vec(n_procs),
                    dds: (g.u() % 100_000) as f64 / 7.0,
                    ws_sig: g.vec(2),
                    branches: g.u() % 5000,
                })
                .collect()
        })
        .collect();
    Checkpoint {
        meta: CheckpointMeta {
            app: App::EXTENDED[(g.u() % 5) as usize],
            n_procs,
            scale: [Scale::Test, Scale::Scaled, Scale::Paper][(g.u() % 3) as usize],
            interval_base: 16_000,
            topology: TopologyKind::ALL[(g.u() % 5) as usize],
            link_contention: g.u().is_multiple_of(2),
            plan: if g.u().is_multiple_of(2) { FaultPlan::none() } else { FaultPlan::mixed(g.u(), 0.01) },
            geometry: DetectorGeometry::default(),
            interval_index: g.u() % 64,
            shards: (g.u() % (n_procs as u64 + 1)) as usize,
        },
        system: SystemState {
            procs,
            directory: DirectoryState {
                entries: (0..(g.u() % 8))
                    .map(|b| {
                        let st = if g.u().is_multiple_of(2) {
                            DirState::Shared(g.u() % (1 << n_procs))
                        } else {
                            DirState::Exclusive((g.u() % n_procs as u64) as usize)
                        };
                        (b, st)
                    })
                    .collect(),
                stats: DirectoryStats { reads: g.u(), writes: g.u(), ..Default::default() },
            },
            network: NetworkState {
                msgs: g.u(),
                payload_msgs: g.u(),
                total_hops: g.u(),
                link_wait_cycles: g.u(),
                total_flit_hops: g.u(),
                link_busy: g.vec(n_procs * 2),
                link_flits: g.vec(n_procs * 2),
            },
            memctrls: (0..n_procs)
                .map(|_| MemCtrlState {
                    busy_until: g.vec(4),
                    requests: g.u(),
                    total_queue_delay: g.u(),
                })
                .collect(),
            home: HomeMapState {
                first_touch: (0..(g.u() % 5))
                    .map(|p| (p, (g.u() % n_procs as u64) as usize))
                    .collect(),
                overrides: (0..(g.u() % 4))
                    .map(|p| (p + 100, (g.u() % n_procs as u64) as usize))
                    .collect(),
                touches: (0..(g.u() % 3)).map(|p| (p + 200, g.vec(n_procs))).collect(),
                track: g.u().is_multiple_of(2),
            },
            locks: (0..(g.u() % 3))
                .map(|id| LockSnap {
                    id: id as u32,
                    owner: if g.u().is_multiple_of(2) {
                        None
                    } else {
                        Some((g.u() % n_procs as u64) as usize)
                    },
                    waiters: (0..(g.u() % n_procs as u64))
                        .map(|w| w as usize)
                        .collect(),
                })
                .collect(),
            barrier: BarrierSnap {
                current_id: if g.u().is_multiple_of(2) { None } else { Some((g.u() % 8) as u32) },
                arrived: {
                    let mut words = vec![0u64; n_procs.div_ceil(64)];
                    for w in &mut words {
                        *w = g.u();
                    }
                    let tail = n_procs % 64;
                    if tail != 0 {
                        *words.last_mut().unwrap() %= 1 << tail;
                    }
                    words
                },
                arrival_cycle: g.vec(n_procs),
            },
            fault: FaultSnap {
                draws: g.u(),
                stats: dsm_sim::FaultStats { messages: g.u(), drops: g.u(), ..Default::default() },
            },
            pending,
            events_executed: g.u(),
            fetched: g.vec(n_procs),
            reconfig: ReconfigSnap {
                dvfs_num: if g.u().is_multiple_of(2) { Vec::new() } else { g.vec(n_procs) },
                stats: ReconfigStats {
                    migrations: g.u(),
                    migration_stall_cycles: g.u(),
                    dvfs_epochs: g.u(),
                    dvfs_extra_cycles: g.u(),
                    dvfs_saved_cycles: g.u(),
                    core_switches: g.u(),
                },
            },
        },
        collector: CollectorState {
            bbv: (0..n_procs).map(|_| g.vec(4)).collect(),
            ws: (0..n_procs).map(|_| g.vec(2)).collect(),
            branches: g.vec(n_procs),
            ddv: DdvSnap {
                mats: (0..n_procs)
                    .map(|_| FrequencySnap {
                        cum: g.vec(n_procs),
                        snap: g.vec(n_procs * n_procs),
                    })
                    .collect(),
                gcum: g.vec(n_procs),
                gsnap: g.vec(n_procs * n_procs),
                queries: g.u(),
                vectors_exchanged: g.u(),
                gather_rounds: g.u(),
            },
            records,
        },
        adapt: if g.u().is_multiple_of(2) { None } else { Some(synth_adapt(&mut g, n_procs)) },
    }
}

/// Build a structurally valid mid-tuning adaptation snapshot (the decode
/// invariant requires `processed == stream.len()` and `processed <= target`).
fn synth_adapt(g: &mut Gen, n_procs: usize) -> AdaptSnap {
    let processed = g.u() % 6;
    let stream: Vec<ObservedInterval> = (0..processed)
        .map(|i| ObservedInterval {
            index: i,
            phase: (g.u() % 4) as u32,
            cpi: (g.u() % 10_000) as f64 / 100.0,
            degraded: g.u().is_multiple_of(5),
        })
        .collect();
    let phases: Vec<PhaseSnap> = (0..(g.u() % 3))
        .map(|p| PhaseSnap {
            phase: p as u32,
            state: if g.u().is_multiple_of(2) {
                PhaseStateSnap::Locked { config: g.u() % 4 }
            } else {
                PhaseStateSnap::Tuning {
                    config: g.u() % 4,
                    trials_left: g.u() % 3,
                    best_config: g.u() % 4,
                    best_score: (g.u() % 1000) as f64 / 10.0,
                    acc: (g.u() % 1000) as f64 / 10.0,
                    acc_n: g.u() % 8,
                }
            },
        })
        .collect();
    let decisions: Vec<Decision> = (0..(g.u() % 4))
        .map(|i| Decision {
            interval: i,
            phase: (g.u() % 4) as u32,
            kind: if g.u().is_multiple_of(2) {
                DecisionKind::Trial { config: (g.u() % 4) as usize }
            } else {
                DecisionKind::Lock { config: (g.u() % 4) as usize }
            },
        })
        .collect();
    AdaptSnap {
        target: processed + g.u() % 4,
        processed,
        phases,
        decisions,
        stream,
        retunes: g.u() % 8,
        actuator: g.vec(n_procs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random byte soup never panics the decoder.
    #[test]
    fn decode_total_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Checkpoint::decode(&bytes);
    }

    /// Random bytes behind a valid magic never panic the decoder either
    /// (this exercises the structural readers, not just the magic check).
    #[test]
    fn decode_total_behind_valid_magic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&bytes);
        let _ = Checkpoint::decode(&buf);
    }

    /// encode → decode is the identity, and encoding is deterministic.
    #[test]
    fn roundtrip_identity(seed in any::<u64>(), n_procs in 1usize..5, n_recs in 0usize..4) {
        let ck = synth(seed, n_procs, n_recs);
        let bytes = ck.encode();
        prop_assert_eq!(&bytes, &ck.encode());
        let back = Checkpoint::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &ck);
    }

    /// Single-byte corruption anywhere is either rejected with a typed error
    /// or decodes to a checkpoint that canonically re-encodes to the same
    /// corrupted bytes — never a panic, never a non-canonical decode.
    #[test]
    fn corruption_is_total_and_canonical(
        seed in any::<u64>(),
        n_procs in 1usize..4,
        pos_sel in any::<u64>(),
        delta in 1u8..255,
    ) {
        let ck = synth(seed, n_procs, 2);
        let mut bytes = ck.encode();
        let pos = (pos_sel % bytes.len() as u64) as usize;
        bytes[pos] ^= delta;
        if let Ok(decoded) = Checkpoint::decode(&bytes) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    /// Every strict prefix of a valid checkpoint fails to decode.
    #[test]
    fn truncation_always_errors(seed in any::<u64>(), cut_sel in any::<u64>()) {
        let ck = synth(seed, 2, 1);
        let bytes = ck.encode();
        let cut = (cut_sel % bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }
}
