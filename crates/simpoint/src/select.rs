//! Representative-interval selection (SimPoint-style).
//!
//! Each *global* sampling interval (one where every processor has completed
//! its interval of that index) gets a signature vector: the per-processor
//! mean of the normalized BBVs concatenated with the normalized system-wide
//! per-home access frequencies and communication counts — code behaviour
//! first, then the two data-distribution signals (`fvec`, `cvec`) the
//! paper's DDS metric is built from.
//! Signatures are clustered with deterministic k-means (k-means++ seeding
//! from a `splitmix64` stream, Manhattan distance, as in SimPoint); the best
//! `k` is picked by a BIC-style score, and each cluster contributes its
//! member closest to the centroid as the representative interval, weighted
//! by cluster size.
//!
//! Everything here is deterministic: same records + same seed → the same
//! selection, bit for bit.

use dsm_phase::detector::IntervalRecord;
use dsm_sim::util::splitmix64;

/// One selected representative interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Simpoint {
    /// Global interval index this representative stands for.
    pub interval: usize,
    /// Fraction of all intervals its cluster covers (weights sum to 1).
    pub weight: f64,
    /// Number of intervals in its cluster.
    pub cluster_size: usize,
}

/// The outcome of clustering: chosen `k`, representatives, and per-interval
/// cluster assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    pub k: usize,
    /// Representatives sorted by interval index.
    pub simpoints: Vec<Simpoint>,
    /// Cluster id per global interval, aligned with the signature slice.
    pub assignments: Vec<usize>,
    /// BIC-style score of the chosen `k` (higher is better).
    pub score: f64,
    /// Total intervals clustered.
    pub n_intervals: usize,
}

impl Selection {
    /// Simulated-interval reduction factor: total intervals over selected.
    pub fn reduction(&self) -> f64 {
        if self.simpoints.is_empty() {
            1.0
        } else {
            self.n_intervals as f64 / self.simpoints.len() as f64
        }
    }
}

/// Build per-global-interval signatures from a profiling trace's records
/// (per processor, in interval order). Only intervals completed by *every*
/// processor are used, so the signature list length is the min record count.
///
/// Three distribution blocks, each normalized to unit mass so no block
/// dominates on raw volume: the per-processor mean of the normalized BBVs
/// (code behaviour), the system-wide per-home access frequencies (`fvec`,
/// data distribution), and the system-wide cross-processor communication
/// counts (`cvec`, the sharing/contention component of the paper's DDS
/// metric). Two *intensity* dimensions follow — memory references per
/// instruction and communication events per instruction, each scaled to
/// `[0, 1]` by its maximum over the trace. Unit-mass normalization
/// deliberately erases volume, but volume per instruction is exactly what
/// separates e.g. cold-start intervals (every access misses and travels)
/// from steady-state intervals running the same code — and those are the
/// CPI outliers a sampled run must put in their own cluster.
pub fn signatures(records: &[Vec<IntervalRecord>]) -> Vec<Vec<f64>> {
    let n_procs = records.len();
    assert!(n_procs > 0, "need at least one processor");
    let n_intervals = records.iter().map(|r| r.len()).min().unwrap_or(0);
    let bbv_dim = records
        .iter()
        .find_map(|r| r.first())
        .map_or(0, |r| r.bbv.len());
    let mut sigs: Vec<Vec<f64>> = (0..n_intervals)
        .map(|i| {
            let mut sig = vec![0.0; bbv_dim + 2 * n_procs + 2];
            let mut insns = 0u64;
            for recs in records {
                let r = &recs[i];
                insns += r.insns;
                for (s, &v) in sig.iter_mut().zip(r.bbv.iter()) {
                    *s += v / n_procs as f64;
                }
                for (s, &f) in sig[bbv_dim..bbv_dim + n_procs].iter_mut().zip(r.fvec.iter()) {
                    *s += f as f64;
                }
                for (s, &c) in
                    sig[bbv_dim + n_procs..bbv_dim + 2 * n_procs].iter_mut().zip(r.cvec.iter())
                {
                    *s += c as f64;
                }
            }
            let f_mass: f64 = sig[bbv_dim..bbv_dim + n_procs].iter().sum();
            let c_mass: f64 = sig[bbv_dim + n_procs..bbv_dim + 2 * n_procs].iter().sum();
            for block in [bbv_dim..bbv_dim + n_procs, bbv_dim + n_procs..bbv_dim + 2 * n_procs] {
                let total: f64 = sig[block.clone()].iter().sum();
                if total > 0.0 {
                    for v in &mut sig[block] {
                        *v /= total;
                    }
                }
            }
            if insns > 0 {
                sig[bbv_dim + 2 * n_procs] = f_mass / insns as f64;
                sig[bbv_dim + 2 * n_procs + 1] = c_mass / insns as f64;
            }
            sig
        })
        .collect();
    // Scale each intensity dimension by its trace-wide maximum.
    for d in [bbv_dim + 2 * n_procs, bbv_dim + 2 * n_procs + 1] {
        let max = sigs.iter().map(|s| s[d]).fold(0.0f64, f64::max);
        if max > 0.0 {
            for s in &mut sigs {
                s[d] /= max;
            }
        }
    }
    sigs
}

/// Manhattan distance between two equal-length vectors.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A tiny deterministic RNG: counter-indexed splitmix64 draws.
struct Rng {
    seed: u64,
    ctr: u64,
}

impl Rng {
    fn next(&mut self) -> u64 {
        self.ctr += 1;
        splitmix64(self.seed ^ self.ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
    /// Uniform f64 in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// k-means++ seeding: first centroid uniform, each next one drawn with
/// probability proportional to its distance to the nearest chosen centroid.
fn seed_centroids(sigs: &[Vec<f64>], k: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    let n = sigs.len();
    let mut centroids = Vec::with_capacity(k);
    centroids.push(sigs[(rng.next() % n as u64) as usize].clone());
    let mut dist: Vec<f64> = sigs.iter().map(|s| manhattan(s, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist.iter().sum();
        let idx = if total <= 0.0 {
            // All points coincide with a centroid; any choice is equivalent.
            (rng.next() % n as u64) as usize
        } else {
            let mut target = rng.unit() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let c = sigs[idx].clone();
        for (d, s) in dist.iter_mut().zip(sigs) {
            *d = d.min(manhattan(s, &c));
        }
        centroids.push(c);
    }
    centroids
}

/// One full k-means run; returns (assignments, distortion).
fn kmeans(sigs: &[Vec<f64>], k: usize, rng: &mut Rng) -> (Vec<usize>, f64) {
    let n = sigs.len();
    let dim = sigs[0].len();
    let mut centroids = seed_centroids(sigs, k, rng);
    let mut assign = vec![0usize; n];
    for _round in 0..100 {
        let mut changed = false;
        for (i, s) in sigs.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = manhattan(s, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; an emptied cluster is reseeded to the point
        // farthest from its current assignment's centroid (deterministic:
        // ties break to the smaller interval index).
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (s, &a) in sigs.iter().zip(&assign) {
            counts[a] += 1;
            for (acc, &v) in sums[a].iter_mut().zip(s) {
                *acc += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&i, &j| {
                        let di = manhattan(&sigs[i], &centroids[assign[i]]);
                        let dj = manhattan(&sigs[j], &centroids[assign[j]]);
                        di.partial_cmp(&dj).unwrap().then(j.cmp(&i))
                    })
                    .unwrap();
                centroids[c] = sigs[far].clone();
                changed = true;
            } else {
                for (dst, &s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *dst = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let distortion = sigs
        .iter()
        .zip(&assign)
        .map(|(s, &a)| manhattan(s, &centroids[a]))
        .sum();
    (assign, distortion)
}

/// BIC-style model score: data likelihood proxy minus a complexity penalty.
/// Higher is better; ties during the sweep resolve to the smaller `k`.
fn score(n: usize, k: usize, distortion: f64) -> f64 {
    let n_f = n as f64;
    -n_f * ((distortion + 1e-9) / n_f).ln() - 0.5 * k as f64 * n_f.ln()
}

/// Cluster `sigs` for every `k` in `1..=max_k` and keep the clustering at
/// the score knee: the smallest `k` whose score reaches 90% of the sweep's
/// score range (the SimPoint selection rule — a plain argmax over-splits,
/// because halving the distortion always beats the complexity penalty).
/// Representatives are each cluster's member closest to its centroid (ties
/// to the smaller interval index).
pub fn select(sigs: &[Vec<f64>], max_k: usize, seed: u64) -> Selection {
    assert!(!sigs.is_empty(), "cannot select from an empty signature list");
    let n = sigs.len();
    let max_k = max_k.clamp(1, n);
    let runs: Vec<(Vec<usize>, f64)> = (1..=max_k)
        .map(|k| {
            let mut rng = Rng { seed: seed ^ (k as u64) << 32, ctr: 0 };
            let (assign, distortion) = kmeans(sigs, k, &mut rng);
            (assign, score(n, k, distortion))
        })
        .collect();
    let hi = runs.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
    let lo = runs.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let threshold = lo + 0.9 * (hi - lo);
    let pick = runs.iter().position(|r| r.1 >= threshold).unwrap();
    let (assignments, sc) = runs.into_iter().nth(pick).unwrap();
    let k = pick + 1;
    // Per-cluster centroid (means over members), then nearest member.
    let dim = sigs[0].len();
    let mut sums = vec![vec![0.0; dim]; k];
    let mut counts = vec![0usize; k];
    for (s, &a) in sigs.iter().zip(&assignments) {
        counts[a] += 1;
        for (acc, &v) in sums[a].iter_mut().zip(s) {
            *acc += v;
        }
    }
    let mut simpoints = Vec::new();
    for c in 0..k {
        if counts[c] == 0 {
            continue;
        }
        let centroid: Vec<f64> = sums[c].iter().map(|&s| s / counts[c] as f64).collect();
        let rep = (0..n)
            .filter(|&i| assignments[i] == c)
            .min_by(|&i, &j| {
                manhattan(&sigs[i], &centroid)
                    .partial_cmp(&manhattan(&sigs[j], &centroid))
                    .unwrap()
                    .then(i.cmp(&j))
            })
            .unwrap();
        simpoints.push(Simpoint {
            interval: rep,
            weight: counts[c] as f64 / n as f64,
            cluster_size: counts[c],
        });
    }
    simpoints.sort_by_key(|s| s.interval);
    Selection { k, simpoints, assignments, score: sc, n_intervals: n }
}

/// One interval chosen for replay, with its weight *within its cluster*
/// (each cluster's weights sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleUnit {
    pub interval: usize,
    pub weight: f64,
}

/// Stratified sampling on top of a [`Selection`]: spread a total replay
/// `budget` across clusters by Neyman allocation — proportional to
/// `cluster_size x std-dev of aux over the cluster` — where `aux` is a
/// per-interval auxiliary statistic from the profiling pass (the harness
/// passes profiled per-interval CPI). Every cluster gets at least one
/// member; homogeneous clusters (zero spread) need no more than that, so
/// the budget concentrates where the signature could not separate
/// behaviour. Within a cluster, members are sorted by `aux` and split into
/// as many contiguous groups as the cluster's allocation by exact 1-D
/// optimal stratification (Fisher's dynamic program minimising within-group
/// aux variance); each group contributes its median member, weighted by the
/// group's exact share of the cluster.
///
/// The auxiliary statistic only shapes the strata; estimates are computed
/// exclusively from the replayed measurements of the chosen intervals. This
/// is what protects the reconstruction against heavy-tailed behaviour the
/// signature cannot see: a cold-start interval whose CPI is 20x the steady
/// state inflates its cluster's spread, the cluster is sampled densely, and
/// the outlier ends up alone in its group — always replayed, with its true
/// 1/len weight.
///
/// Returns one list per entry of `sel.simpoints` (same order); lists are
/// disjoint across clusters, each list's weights sum to 1, and the total
/// sample count never exceeds `max(budget, k)`. Entirely deterministic.
pub fn stratified_members(sel: &Selection, budget: usize, aux: &[f64]) -> Vec<Vec<SampleUnit>> {
    let k = sel.simpoints.len();
    assert!(k > 0, "selection has no clusters");
    let n = sel.n_intervals;
    assert_eq!(aux.len(), n, "need one auxiliary value per interval");
    let budget = budget.clamp(k, n.max(k));

    // Cluster membership, aux-sorted (ties resolve to the smaller interval).
    let member_lists: Vec<Vec<usize>> = sel
        .simpoints
        .iter()
        .map(|sp| {
            let c = sel.assignments[sp.interval];
            let mut members: Vec<usize> = (0..n).filter(|&i| sel.assignments[i] == c).collect();
            members.sort_by(|&a, &b| {
                aux[a].partial_cmp(&aux[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            });
            members
        })
        .collect();

    // Neyman scores N_c * sigma_c; fall back to plain proportional (N_c)
    // when aux carries no spread anywhere.
    let scores: Vec<f64> = member_lists
        .iter()
        .map(|members| {
            let len = members.len() as f64;
            let mean = members.iter().map(|&i| aux[i]).sum::<f64>() / len;
            let var = members.iter().map(|&i| (aux[i] - mean).powi(2)).sum::<f64>() / len;
            len * var.sqrt()
        })
        .collect();
    let total: f64 = scores.iter().sum();
    let scores: Vec<f64> = if total > 0.0 {
        scores
    } else {
        member_lists.iter().map(|m| m.len() as f64).collect()
    };
    let total: f64 = scores.iter().sum();

    let mut alloc: Vec<usize> = member_lists
        .iter()
        .zip(&scores)
        .map(|(m, s)| ((budget as f64 * s / total) as usize).clamp(1, m.len()))
        .collect();
    while alloc.iter().sum::<usize>() > budget {
        // Trim the largest allocation (ties resolve to the smaller cluster
        // position) until the budget holds.
        let i = (0..k).max_by(|&a, &b| alloc[a].cmp(&alloc[b]).then(b.cmp(&a))).unwrap();
        if alloc[i] <= 1 {
            break;
        }
        alloc[i] -= 1;
    }
    // Spend any flooring slack where the marginal benefit (score per sample
    // already allocated) is greatest.
    while alloc.iter().sum::<usize>() < budget {
        let grow = (0..k)
            .filter(|&i| alloc[i] < member_lists[i].len())
            .max_by(|&a, &b| {
                let ma = scores[a] / alloc[a] as f64;
                let mb = scores[b] / alloc[b] as f64;
                ma.partial_cmp(&mb).unwrap_or(std::cmp::Ordering::Equal).then(b.cmp(&a))
            });
        match grow {
            Some(i) => alloc[i] += 1,
            None => break,
        }
    }

    member_lists
        .iter()
        .zip(&alloc)
        .map(|(members, &m)| {
            let len = members.len();
            let vals: Vec<f64> = members.iter().map(|&i| aux[i]).collect();
            let breaks = optimal_breaks(&vals, m);
            breaks
                .windows(2)
                .map(|w| {
                    let (lo, hi) = (w[0], w[1]);
                    SampleUnit {
                        interval: members[(lo + hi) / 2],
                        weight: (hi - lo) as f64 / len as f64,
                    }
                })
                .collect()
        })
        .collect()
}

/// Exact 1-D optimal stratification: split the sorted values into `m`
/// contiguous groups minimising the total within-group sum of squared
/// deviations (Fisher's dynamic program). Returns the `m + 1` group
/// boundaries, starting at 0 and ending at `vals.len()`. Ties resolve to
/// the earliest break, so the result is deterministic.
fn optimal_breaks(vals: &[f64], m: usize) -> Vec<usize> {
    let len = vals.len();
    debug_assert!(m >= 1 && m <= len);
    // Prefix sums make any group's SSE O(1).
    let mut sum = vec![0.0; len + 1];
    let mut sq = vec![0.0; len + 1];
    for (i, &v) in vals.iter().enumerate() {
        sum[i + 1] = sum[i] + v;
        sq[i + 1] = sq[i] + v * v;
    }
    let sse = |lo: usize, hi: usize| -> f64 {
        let n = (hi - lo) as f64;
        let s = sum[hi] - sum[lo];
        ((sq[hi] - sq[lo]) - s * s / n).max(0.0)
    };
    // cost[j] = best total SSE partitioning vals[..j] into the current
    // number of groups; from[g][j] = where that last group starts.
    let mut cost: Vec<f64> = (0..=len).map(|j| if j == 0 { 0.0 } else { sse(0, j) }).collect();
    let mut from = vec![vec![0usize; len + 1]; m];
    for (g, from_g) in from.iter_mut().enumerate().skip(1) {
        let mut next = vec![f64::INFINITY; len + 1];
        for j in (g + 1)..=len {
            for (i, &cost_i) in cost.iter().enumerate().take(j).skip(g) {
                let c = cost_i + sse(i, j);
                if c < next[j] {
                    next[j] = c;
                    from_g[j] = i;
                }
            }
        }
        cost = next;
    }
    let mut breaks = vec![len];
    let mut j = len;
    for g in (1..m).rev() {
        j = from[g][j];
        breaks.push(j);
    }
    breaks.push(0);
    breaks.reverse();
    breaks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(proc: usize, index: u64, bbv: Vec<f64>, fvec: Vec<u64>) -> IntervalRecord {
        IntervalRecord {
            proc,
            index,
            insns: 100,
            cycles: 200,
            bbv,
            fvec,
            cvec: vec![],
            dds: 0.0,
            ws_sig: vec![],
            branches: 1,
        }
    }

    #[test]
    fn signatures_concatenate_code_and_data_blocks() {
        let records = vec![
            vec![rec(0, 0, vec![1.0, 0.0], vec![3, 1])],
            vec![rec(1, 0, vec![0.0, 1.0], vec![1, 3])],
        ];
        let sigs = signatures(&records);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].len(), 8);
        assert_eq!(&sigs[0][..2], &[0.5, 0.5]);
        // fvec sums: home0 = 4, home1 = 4 → normalized 0.5 each.
        assert_eq!(&sigs[0][2..4], &[0.5, 0.5]);
        // cvec is empty in these records → the block stays zero.
        assert_eq!(&sigs[0][4..6], &[0.0, 0.0]);
        // Intensity dims: fvec mass is nonzero (scaled to the trace max of
        // itself → 1.0); cvec mass is zero.
        assert_eq!(&sigs[0][6..], &[1.0, 0.0]);
    }

    #[test]
    fn signatures_intensity_dims_separate_volume_outliers() {
        // Same code/data *distribution* every interval, but interval 0 has
        // 10x the per-instruction traffic (cold start): only the intensity
        // dimension can tell them apart.
        let records = vec![(0..6)
            .map(|i| {
                let vol = if i == 0 { 100 } else { 10 };
                rec(0, i, vec![1.0], vec![vol, vol])
            })
            .collect::<Vec<_>>()];
        let sigs = signatures(&records);
        let d = sigs[0].len() - 2;
        assert_eq!(sigs[0][d], 1.0);
        assert!((sigs[1][d] - 0.1).abs() < 1e-12);
        // And clustering on them isolates the outlier.
        let sel = select(&sigs, 3, 5);
        assert!(sel.k >= 2);
        let outlier_cluster = sel.assignments[0];
        assert_eq!(sel.assignments.iter().filter(|&&a| a == outlier_cluster).count(), 1);
    }

    #[test]
    fn signatures_use_min_interval_count() {
        let records = vec![
            vec![
                rec(0, 0, vec![1.0], vec![1]),
                rec(0, 1, vec![1.0], vec![1]),
            ],
            vec![rec(1, 0, vec![1.0], vec![1])],
        ];
        assert_eq!(signatures(&records).len(), 1);
    }

    fn two_cluster_sigs() -> Vec<Vec<f64>> {
        // 12 intervals: 8 near (1, 0), 4 near (0, 1), with a smooth tiny
        // within-cluster spread (no separable sub-clusters).
        let mut sigs = Vec::new();
        for i in 0..12 {
            let jitter = 0.001 * i as f64;
            if i % 3 == 2 {
                sigs.push(vec![jitter, 1.0]);
            } else {
                sigs.push(vec![1.0, jitter]);
            }
        }
        sigs
    }

    #[test]
    fn select_finds_two_well_separated_clusters() {
        let sigs = two_cluster_sigs();
        let sel = select(&sigs, 4, 42);
        assert_eq!(sel.k, 2, "two clear clusters must select k = 2");
        assert_eq!(sel.simpoints.len(), 2);
        let w: f64 = sel.simpoints.iter().map(|s| s.weight).sum();
        assert!((w - 1.0).abs() < 1e-12, "weights must sum to 1");
        // The big cluster has 8 of 12 members.
        let big = sel.simpoints.iter().map(|s| s.cluster_size).max().unwrap();
        assert_eq!(big, 8);
        // Members with the same shape are assigned together.
        assert_eq!(sel.assignments[2], sel.assignments[5]);
        assert_ne!(sel.assignments[0], sel.assignments[2]);
    }

    #[test]
    fn select_is_deterministic() {
        let sigs = two_cluster_sigs();
        let a = select(&sigs, 4, 7);
        let b = select(&sigs, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_intervals_collapse_to_one_cluster() {
        let sigs = vec![vec![0.5, 0.5]; 10];
        let sel = select(&sigs, 5, 1);
        assert_eq!(sel.k, 1);
        assert_eq!(sel.simpoints.len(), 1);
        assert_eq!(sel.simpoints[0].cluster_size, 10);
        assert!((sel.reduction() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn max_k_is_clamped_to_population() {
        let sigs = vec![vec![0.0], vec![1.0]];
        let sel = select(&sigs, 8, 3);
        assert!(sel.k <= 2);
    }

    #[test]
    fn stratified_members_respect_budget_and_cover_clusters() {
        let sigs = two_cluster_sigs();
        let sel = select(&sigs, 4, 42);
        assert_eq!(sel.k, 2);
        let aux: Vec<f64> = (0..sigs.len()).map(|i| i as f64).collect();
        let samples = stratified_members(&sel, 6, &aux);
        assert_eq!(samples.len(), 2);
        let total: usize = samples.iter().map(|s| s.len()).sum();
        assert!(total <= 6, "budget exceeded: {total}");
        // Proportional allocation: the 8-member cluster gets more samples.
        let (big, small) = if sel.simpoints[0].cluster_size == 8 { (0, 1) } else { (1, 0) };
        assert!(samples[big].len() >= samples[small].len());
        // Every sampled interval belongs to its cluster, per-cluster weights
        // sum to 1, and the lists are disjoint.
        let mut seen = std::collections::HashSet::new();
        for (sp, s) in sel.simpoints.iter().zip(&samples) {
            assert!(!s.is_empty());
            let w: f64 = s.iter().map(|u| u.weight).sum();
            assert!((w - 1.0).abs() < 1e-12, "cluster weights sum to {w}");
            for u in s {
                assert_eq!(sel.assignments[u.interval], sel.assignments[sp.interval]);
                assert!(seen.insert(u.interval), "interval {} sampled twice", u.interval);
            }
        }
    }

    #[test]
    fn stratified_members_isolate_aux_outliers() {
        // One cluster of 10 identical signatures; aux marks member 7 as a
        // 100x outlier. With enough allocation, the outlier lands alone in
        // the top aux group and must be sampled with its exact 1/10 weight.
        let sigs = vec![vec![1.0, 0.0]; 10];
        let mut aux = vec![1.0; 10];
        aux[7] = 100.0;
        let sel = select(&sigs, 3, 9);
        assert_eq!(sel.k, 1);
        let samples = stratified_members(&sel, 10, &aux);
        let units = &samples[0];
        let outlier = units.iter().find(|u| u.interval == 7).expect("outlier sampled");
        assert!((outlier.weight - 0.1).abs() < 1e-12);
    }

    #[test]
    fn stratified_members_are_deterministic_and_floor_at_one() {
        let sigs = two_cluster_sigs();
        let sel = select(&sigs, 4, 7);
        let aux = vec![1.0; sigs.len()];
        let a = stratified_members(&sel, 2, &aux);
        assert_eq!(a, stratified_members(&sel, 2, &aux));
        // Budget below k still yields one member per cluster, carrying the
        // whole cluster's weight.
        for s in &a {
            assert_eq!(s.len(), 1);
            assert!((s[0].weight - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[0.0, 0.0], &[1.0, 1.0]), 2.0);
        assert_eq!(manhattan(&[0.5], &[0.5]), 0.0);
    }
}
