//! # dsm-simpoint — phase-guided sampled simulation
//!
//! Whole-application DSM simulation at paper scale costs minutes per run;
//! the phase structure this repository detects is exactly what makes
//! sampling work. This crate implements the SimPoint-style pipeline on top
//! of the simulator's checkpointable state:
//!
//! * [`codec`] — the versioned `DSMCKPT3` binary checkpoint format: a
//!   [`dsm_sim::SystemState`] plus the detector-collector state
//!   ([`dsm_phase::detector::CollectorState`]) at a global interval
//!   boundary, with the metadata needed to rebuild the machine and
//!   fast-forward a fresh instruction stream to the same position. Decoding
//!   is total — corrupt input yields a typed error, never a panic.
//! * [`select`] — per-interval BBV ⊕ data-distribution signatures from a
//!   profiling pass, clustered by deterministic k-means (k-means++ seeding,
//!   Manhattan distance) with a BIC-style `k` sweep; each cluster's
//!   centroid-nearest member becomes a representative interval with its
//!   cluster weight.
//! * [`reconstruct`] — whole-run CPI and CoV-of-CPI as the weight-weighted
//!   combination of per-representative measurements, plus the error and
//!   reduction metrics the harness reports.
//!
//! The harness (`dsm-harness`) glues the three together: it captures the
//!  profiling trace, writes checkpoints at selected boundaries, replays the
//! representatives in parallel, and reports reconstruction error against the
//! full-run golden.

pub mod codec;
pub mod reconstruct;
pub mod select;

pub use codec::{Checkpoint, CheckpointMeta, CkptError, MAGIC};
pub use reconstruct::{
    interval_cpis, mean_and_cov, reconstruct_cpi, relative_error, IntervalCpi, Reconstructed,
};
pub use select::{
    manhattan, select, signatures, stratified_members, SampleUnit, Selection, Simpoint,
};
