//! Whole-run CPI reconstruction from sampled representative intervals.
//!
//! Following the SimPoint methodology, the whole-run statistic is estimated
//! as the cluster-weight-weighted combination of the per-representative
//! measurements: `CPI ≈ Σ_c w_c · CPI_c`, and the CoV of per-interval CPI is
//! recovered from the weighted second moment. Both estimators are exact when
//! every member of a cluster behaves like its representative.

use dsm_phase::detector::IntervalRecord;
use serde::{Deserialize, Serialize};

/// Aggregate CPI of one global interval (all processors combined).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalCpi {
    pub interval: usize,
    /// `Σ_p cycles / Σ_p insns` over the interval.
    pub cpi: f64,
    pub insns: u64,
    pub cycles: u64,
}

/// Per-global-interval CPIs from per-processor records; only intervals
/// completed by every processor count (same convention as
/// [`crate::select::signatures`]).
pub fn interval_cpis(records: &[Vec<IntervalRecord>]) -> Vec<IntervalCpi> {
    let n_intervals = records.iter().map(|r| r.len()).min().unwrap_or(0);
    (0..n_intervals)
        .map(|i| {
            let insns: u64 = records.iter().map(|r| r[i].insns).sum();
            let cycles: u64 = records.iter().map(|r| r[i].cycles).sum();
            IntervalCpi {
                interval: i,
                cpi: if insns == 0 { 0.0 } else { cycles as f64 / insns as f64 },
                insns,
                cycles,
            }
        })
        .collect()
}

/// Mean and coefficient of variation of a value series (population CoV;
/// zero for an empty or zero-mean series).
pub fn mean_and_cov(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return (0.0, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt() / mean)
}

/// A reconstructed whole-run estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reconstructed {
    /// Weighted mean CPI.
    pub cpi: f64,
    /// CoV of per-interval CPI implied by the weighted mixture.
    pub cov: f64,
}

/// Combine per-representative CPIs under cluster weights. `weights` and
/// `cpis` are aligned; weights must sum to ~1.
pub fn reconstruct_cpi(weights: &[f64], cpis: &[f64]) -> Reconstructed {
    assert_eq!(weights.len(), cpis.len());
    if weights.is_empty() {
        return Reconstructed { cpi: 0.0, cov: 0.0 };
    }
    let mean: f64 = weights.iter().zip(cpis).map(|(&w, &c)| w * c).sum();
    if mean == 0.0 {
        return Reconstructed { cpi: 0.0, cov: 0.0 };
    }
    let second: f64 = weights.iter().zip(cpis).map(|(&w, &c)| w * c * c).sum();
    // Clamp: the mixture variance can go slightly negative in floating point
    // when all representatives coincide.
    let var = (second - mean * mean).max(0.0);
    Reconstructed { cpi: mean, cov: var.sqrt() / mean }
}

/// Relative error `|est - actual| / actual` (absolute error when the actual
/// value is zero).
pub fn relative_error(est: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        est.abs()
    } else {
        (est - actual).abs() / actual.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(proc: usize, index: u64, insns: u64, cycles: u64) -> IntervalRecord {
        IntervalRecord {
            proc,
            index,
            insns,
            cycles,
            bbv: vec![],
            fvec: vec![],
            cvec: vec![],
            dds: 0.0,
            ws_sig: vec![],
            branches: 0,
        }
    }

    #[test]
    fn interval_cpi_pools_processors() {
        let records = vec![
            vec![rec(0, 0, 100, 150), rec(0, 1, 100, 250)],
            vec![rec(1, 0, 100, 250), rec(1, 1, 100, 150)],
        ];
        let cpis = interval_cpis(&records);
        assert_eq!(cpis.len(), 2);
        assert!((cpis[0].cpi - 2.0).abs() < 1e-12);
        assert!((cpis[1].cpi - 2.0).abs() < 1e-12);
        assert_eq!(cpis[0].insns, 200);
    }

    #[test]
    fn exact_reconstruction_when_clusters_are_pure() {
        // 3 intervals at CPI 1.0 (weight 0.75), 1 at CPI 3.0 (weight 0.25).
        let full = [1.0, 1.0, 3.0, 1.0];
        let (mean, cov) = mean_and_cov(&full);
        let rec = reconstruct_cpi(&[0.75, 0.25], &[1.0, 3.0]);
        assert!((rec.cpi - mean).abs() < 1e-12);
        assert!((rec.cov - cov).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_cluster() {
        let rec = reconstruct_cpi(&[1.0], &[2.5]);
        assert!((rec.cpi - 2.5).abs() < 1e-12);
        assert_eq!(rec.cov, 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(1.05, 1.0) - 0.05).abs() < 1e-12);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
    }

    #[test]
    fn mean_and_cov_empty_and_uniform() {
        assert_eq!(mean_and_cov(&[]), (0.0, 0.0));
        let (m, c) = mean_and_cov(&[2.0, 2.0, 2.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert_eq!(c, 0.0);
    }
}
