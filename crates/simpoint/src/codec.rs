//! Versioned, deterministic binary checkpoint codec (`DSMCKPT5`).
//!
//! A checkpoint is the pair (simulator state, detector-collector state) at a
//! global interval boundary, plus the metadata needed to rebuild the machine
//! and fast-forward a fresh instruction stream to the same position. The
//! encoding is fully deterministic (little-endian integers, `f64` as raw
//! bits, all maps pre-sorted by key in the snapshot layer), so encoding the
//! same state twice yields byte-identical buffers — which the harness relies
//! on for byte-identical artefact reruns.
//!
//! Decoding is total: corrupt or truncated input of any shape produces a
//! typed [`CkptError`], never a panic or an attempted huge allocation. Every
//! length prefix is validated against the bytes actually remaining before a
//! buffer is reserved (the same guard idiom as the harness trace codec), and
//! all enum tags and booleans are range-checked.

use dsm_adapt::{
    AdaptSnap, Decision, DecisionKind, ObservedInterval, PhaseSnap, PhaseStateSnap,
};
use dsm_phase::ddv::{DdvSnap, FrequencySnap};
use dsm_phase::detector::{CollectorState, DetectorGeometry, IntervalRecord};
use dsm_sim::config::{CoreConfig, FaultPlan, RetryPolicy};
use dsm_sim::reconfig::{ReconfigSnap, ReconfigStats};
use dsm_sim::directory::DirState;
use dsm_sim::event::Event;
use dsm_sim::state::{
    BarrierSnap, CacheState, DirectoryState, FaultSnap, GshareState, HomeMapState, LockSnap,
    MemCtrlState, NetworkState, ProcessorState, SystemState,
};
use dsm_sim::topology::TopologyKind;
use dsm_workloads::{App, Scale};

/// Magic prefix: format name plus version digit. Version 2 added the
/// route-aware fabric: the topology + link-contention flag in the metadata
/// and the per-link flit counters in the network section. Version 3 scales
/// past 64 nodes: the barrier arrival bitmap became multi-word, the DDV
/// snapshot carries the O(n) aggregate-gather state (`G`, `S`, round
/// counter), and the metadata records the shard count the run was captured
/// under (0 = serial core). Version 4 carries the adaptation subsystem:
/// per-processor core profiles, home-map migration overrides and touch
/// counters, the DVFS/reconfiguration snapshot, and an optional
/// [`AdaptSnap`] so a checkpoint taken mid-tuning resumes the §II protocol
/// bit-exactly. Version 5 carries the targeted-straggler fault-plan fields
/// (`slowdown_node`, `slowdown_from_cycle`, `slowdown_until_cycle`) the
/// diagnostics layer's ground-truth plans use.
pub const MAGIC: &[u8; 8] = b"DSMCKPT5";

/// The version-independent format prefix shared by every `DSMCKPT` version.
const MAGIC_FAMILY: &[u8; 7] = b"DSMCKPT";

/// Decode failure. Every variant is reachable from corrupt input; none of
/// them panic or allocate unboundedly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// A `DSMCKPT` checkpoint of a different version (e.g. a pre-fabric
    /// `DSMCKPT1` or a pre-sharding `DSMCKPT2` file); re-capture the
    /// checkpoint with this build.
    UnsupportedVersion { version: u8 },
    /// The buffer ended before the structure it claims to hold.
    Truncated,
    /// Well-formed structure followed by unconsumed bytes.
    TrailingBytes,
    /// An enum tag out of range.
    BadTag { what: &'static str, tag: u64 },
    /// A value that parses but cannot describe a real machine
    /// (e.g. mismatched per-processor vector lengths).
    BadValue { what: &'static str },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a DSMCKPT5 checkpoint (bad magic)"),
            CkptError::UnsupportedVersion { version } => {
                write!(f, "unsupported DSMCKPT version {:?}", *version as char)
            }
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::TrailingBytes => write!(f, "trailing bytes after checkpoint"),
            CkptError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            CkptError::BadValue { what } => write!(f, "inconsistent checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Everything needed to rebuild the machine a [`SystemState`] belongs to:
/// the experiment coordinates (app, processor count, input scale, interval
/// base), the fault plan, and the detector geometry. `interval_index` is the
/// global interval boundary the snapshot sits at.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    pub app: App,
    pub n_procs: usize,
    pub scale: Scale,
    pub interval_base: u64,
    /// Interconnect layout the snapshot's link vectors are indexed by;
    /// restoring on a different topology is a config error, not a decode
    /// error, so it is carried explicitly.
    pub topology: TopologyKind,
    /// Whether the captured run modelled per-link wormhole contention.
    pub link_contention: bool,
    pub plan: FaultPlan,
    pub geometry: DetectorGeometry,
    pub interval_index: u64,
    /// Shard count the capturing run executed under (0 = serial core).
    /// Informational for resume: sharded execution is bit-identical to
    /// serial at any shard count, so a resume may pick any sharding — this
    /// records what produced the snapshot.
    pub shards: usize,
}

/// A complete checkpoint: metadata, simulator state, collector state, and
/// — when the capturing run was an adaptation session — the tuning-protocol
/// state needed to resume mid-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub meta: CheckpointMeta,
    pub system: SystemState,
    pub collector: CollectorState,
    /// `Some` iff the checkpoint was taken inside an
    /// [`AdaptSession`](dsm_adapt::AdaptSession); plain captures carry
    /// `None`.
    pub adapt: Option<AdaptSnap>,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct W {
    out: Vec<u8>,
}

impl W {
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn boolean(&mut self, v: bool) {
        self.out.push(v as u8);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
    fn vec_u8(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.out.extend_from_slice(v);
    }
    fn vec_f64(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn event(&mut self, e: &Event) {
        match *e {
            Event::End => self.u8(0),
            Event::Block { bb, insns, taken } => {
                self.u8(1);
                self.u64(bb as u64);
                self.u64(insns as u64);
                self.boolean(taken);
            }
            Event::Mem { addr, write } => {
                self.u8(2);
                self.u64(addr);
                self.boolean(write);
            }
            Event::Fp { ops } => {
                self.u8(3);
                self.u64(ops as u64);
            }
            Event::Barrier { id } => {
                self.u8(4);
                self.u64(id as u64);
            }
            Event::Acquire { lock } => {
                self.u8(5);
                self.u64(lock as u64);
            }
            Event::Release { lock } => {
                self.u8(6);
                self.u64(lock as u64);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct R<'a> {
    b: &'a [u8],
}

type D<T> = Result<T, CkptError>;

impl<'a> R<'a> {
    fn u64(&mut self) -> D<u64> {
        if self.b.len() < 8 {
            return Err(CkptError::Truncated);
        }
        let (head, tail) = self.b.split_at(8);
        self.b = tail;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }
    fn u8(&mut self) -> D<u8> {
        match self.b.split_first() {
            Some((&v, tail)) => {
                self.b = tail;
                Ok(v)
            }
            None => Err(CkptError::Truncated),
        }
    }
    fn boolean(&mut self, what: &'static str) -> D<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CkptError::BadTag { what, tag: t as u64 }),
        }
    }
    fn f64(&mut self) -> D<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn u32_checked(&mut self, what: &'static str) -> D<u32> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| CkptError::BadValue { what })
    }
    fn usize_checked(&mut self, what: &'static str) -> D<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CkptError::BadValue { what })
    }
    /// Length prefix for items at least `min_bytes` each: reject lengths
    /// that could not possibly fit in the remaining buffer *before*
    /// reserving space for them.
    fn len(&mut self, min_bytes: usize) -> D<usize> {
        let n = self.u64()? as usize;
        if n > self.b.len() / min_bytes.max(1) + 1 {
            return Err(CkptError::Truncated);
        }
        Ok(n)
    }
    fn vec_u64(&mut self) -> D<Vec<u64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn vec_u8(&mut self) -> D<Vec<u8>> {
        let n = self.len(1)?;
        if self.b.len() < n {
            return Err(CkptError::Truncated);
        }
        let (head, tail) = self.b.split_at(n);
        self.b = tail;
        Ok(head.to_vec())
    }
    fn vec_f64(&mut self) -> D<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn opt_u64(&mut self, what: &'static str) -> D<Option<u64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(CkptError::BadTag { what, tag: t as u64 }),
        }
    }
    fn event(&mut self) -> D<Event> {
        Ok(match self.u8()? {
            0 => Event::End,
            1 => Event::Block {
                bb: self.u32_checked("event bb")?,
                insns: self.u32_checked("event insns")?,
                taken: self.boolean("event taken")?,
            },
            2 => Event::Mem { addr: self.u64()?, write: self.boolean("event write")? },
            3 => Event::Fp { ops: self.u32_checked("event ops")? },
            4 => Event::Barrier { id: self.u32_checked("event id")? },
            5 => Event::Acquire { lock: self.u32_checked("event lock")? },
            6 => Event::Release { lock: self.u32_checked("event lock")? },
            t => return Err(CkptError::BadTag { what: "event", tag: t as u64 }),
        })
    }
}

// ---------------------------------------------------------------------------
// Structure encoders / decoders
// ---------------------------------------------------------------------------

fn put_cache(w: &mut W, c: &CacheState) {
    w.vec_u64(&c.tags);
    w.vec_u64(&c.lru);
    w.u64(c.clock);
    w.u64(c.hits);
    w.u64(c.misses);
}

fn get_cache(r: &mut R) -> D<CacheState> {
    Ok(CacheState {
        tags: r.vec_u64()?,
        lru: r.vec_u64()?,
        clock: r.u64()?,
        hits: r.u64()?,
        misses: r.u64()?,
    })
}

fn put_proc(w: &mut W, p: &ProcessorState) {
    w.u64(p.cycle);
    w.u64(p.commit_carry);
    w.u64(p.fp_carry);
    w.u64(p.interval_progress);
    w.u64(p.interval_start_cycle);
    w.u64(p.interval_index);
    w.boolean(p.finished);
    w.boolean(p.blocked);
    w.u64(p.blocked_since);
    let s = &p.stats;
    for v in [
        s.cycles,
        s.insns,
        s.sync_ops,
        s.sync_wait_cycles,
        s.mem_refs,
        s.l1_misses,
        s.l2_misses,
        s.local_home_misses,
        s.remote_home_misses,
        s.mem_stall_cycles,
        s.contention_cycles,
        s.mispredicts,
        s.branches,
        s.intervals,
    ] {
        w.u64(v);
    }
    put_cache(w, &p.l1);
    put_cache(w, &p.l2);
    w.vec_u8(&p.gshare.table);
    w.u64(p.gshare.history);
    w.u64(p.gshare.predictions);
    w.u64(p.gshare.mispredictions);
    // Version 4: the core profile in force (heterogeneous actuator).
    w.u64(p.core.commit_width as u64);
    w.u64(p.core.fpu_units as u64);
    w.u64(p.core.mispredict_penalty);
    w.u64(p.core.gshare_entries as u64);
    w.u64(p.core.stall_exposure_num);
}

fn get_proc(r: &mut R) -> D<ProcessorState> {
    let cycle = r.u64()?;
    let commit_carry = r.u64()?;
    let fp_carry = r.u64()?;
    let interval_progress = r.u64()?;
    let interval_start_cycle = r.u64()?;
    let interval_index = r.u64()?;
    let finished = r.boolean("proc finished")?;
    let blocked = r.boolean("proc blocked")?;
    let blocked_since = r.u64()?;
    let stats = dsm_sim::ProcStats {
        cycles: r.u64()?,
        insns: r.u64()?,
        sync_ops: r.u64()?,
        sync_wait_cycles: r.u64()?,
        mem_refs: r.u64()?,
        l1_misses: r.u64()?,
        l2_misses: r.u64()?,
        local_home_misses: r.u64()?,
        remote_home_misses: r.u64()?,
        mem_stall_cycles: r.u64()?,
        contention_cycles: r.u64()?,
        mispredicts: r.u64()?,
        branches: r.u64()?,
        intervals: r.u64()?,
    };
    let l1 = get_cache(r)?;
    let l2 = get_cache(r)?;
    let table = r.vec_u8()?;
    if table.iter().any(|&c| c > 3) {
        return Err(CkptError::BadValue { what: "gshare counter > 3" });
    }
    Ok(ProcessorState {
        cycle,
        commit_carry,
        fp_carry,
        interval_progress,
        interval_start_cycle,
        interval_index,
        finished,
        blocked,
        blocked_since,
        stats,
        l1,
        l2,
        gshare: GshareState {
            table,
            history: r.u64()?,
            predictions: r.u64()?,
            mispredictions: r.u64()?,
        },
        core: CoreConfig {
            commit_width: r.u32_checked("core commit_width")?,
            fpu_units: r.u32_checked("core fpu_units")?,
            mispredict_penalty: r.u64()?,
            gshare_entries: r.usize_checked("core gshare_entries")?,
            stall_exposure_num: r.u64()?,
        },
    })
}

fn put_system(w: &mut W, s: &SystemState) {
    w.u64(s.procs.len() as u64);
    for p in &s.procs {
        put_proc(w, p);
    }
    w.u64(s.directory.entries.len() as u64);
    for &(block, state) in &s.directory.entries {
        w.u64(block);
        match state {
            DirState::Shared(mask) => {
                w.u8(0);
                w.u64(mask);
            }
            DirState::Exclusive(owner) => {
                w.u8(1);
                w.u64(owner as u64);
            }
        }
    }
    let d = &s.directory.stats;
    for v in [d.reads, d.writes, d.owner_forwards, d.invalidations, d.upgrades, d.writebacks, d.nacks]
    {
        w.u64(v);
    }
    w.u64(s.network.msgs);
    w.u64(s.network.payload_msgs);
    w.u64(s.network.total_hops);
    w.u64(s.network.link_wait_cycles);
    w.u64(s.network.total_flit_hops);
    w.vec_u64(&s.network.link_busy);
    w.vec_u64(&s.network.link_flits);
    w.u64(s.memctrls.len() as u64);
    for m in &s.memctrls {
        w.vec_u64(&m.busy_until);
        w.u64(m.requests);
        w.u64(m.total_queue_delay);
    }
    w.u64(s.home.first_touch.len() as u64);
    for &(page, node) in &s.home.first_touch {
        w.u64(page);
        w.u64(node as u64);
    }
    // Version 4: migration overrides and the hot-page touch window.
    w.u64(s.home.overrides.len() as u64);
    for &(page, node) in &s.home.overrides {
        w.u64(page);
        w.u64(node as u64);
    }
    w.u64(s.home.touches.len() as u64);
    for (page, counts) in &s.home.touches {
        w.u64(*page);
        w.vec_u64(counts);
    }
    w.boolean(s.home.track);
    w.u64(s.locks.len() as u64);
    for l in &s.locks {
        w.u64(l.id as u64);
        w.opt_u64(l.owner.map(|o| o as u64));
        w.vec_u64(&l.waiters.iter().map(|&x| x as u64).collect::<Vec<_>>());
    }
    w.opt_u64(s.barrier.current_id.map(|i| i as u64));
    w.vec_u64(&s.barrier.arrived);
    w.vec_u64(&s.barrier.arrival_cycle);
    w.u64(s.fault.draws);
    let f = &s.fault.stats;
    for v in [
        f.messages,
        f.drops,
        f.retries,
        f.forced_deliveries,
        f.duplicates,
        f.spikes,
        f.spike_cycles,
        f.timeout_wait_cycles,
        f.slowdown_events,
        f.slowdown_cycles,
    ] {
        w.u64(v);
    }
    w.u64(s.pending.len() as u64);
    for p in &s.pending {
        match p {
            None => w.u8(0),
            Some(e) => {
                w.u8(1);
                w.event(e);
            }
        }
    }
    w.u64(s.events_executed);
    w.vec_u64(&s.fetched);
    // Version 4: DVFS levels and reconfiguration counters.
    w.vec_u64(&s.reconfig.dvfs_num);
    let rs = &s.reconfig.stats;
    for v in [
        rs.migrations,
        rs.migration_stall_cycles,
        rs.dvfs_epochs,
        rs.dvfs_extra_cycles,
        rs.dvfs_saved_cycles,
        rs.core_switches,
    ] {
        w.u64(v);
    }
}

fn get_system(r: &mut R) -> D<SystemState> {
    // ProcessorState is hundreds of bytes; 64 is a safe per-item floor for
    // the pre-allocation guard.
    let n = r.len(64)?;
    let procs = (0..n).map(|_| get_proc(r)).collect::<D<Vec<_>>>()?;
    let n_dir = r.len(17)?;
    let mut entries = Vec::with_capacity(n_dir);
    for _ in 0..n_dir {
        let block = r.u64()?;
        let state = match r.u8()? {
            0 => DirState::Shared(r.u64()?),
            1 => DirState::Exclusive(r.usize_checked("directory owner")?),
            t => return Err(CkptError::BadTag { what: "directory state", tag: t as u64 }),
        };
        entries.push((block, state));
    }
    let stats = dsm_sim::directory::DirectoryStats {
        reads: r.u64()?,
        writes: r.u64()?,
        owner_forwards: r.u64()?,
        invalidations: r.u64()?,
        upgrades: r.u64()?,
        writebacks: r.u64()?,
        nacks: r.u64()?,
    };
    let network = NetworkState {
        msgs: r.u64()?,
        payload_msgs: r.u64()?,
        total_hops: r.u64()?,
        link_wait_cycles: r.u64()?,
        total_flit_hops: r.u64()?,
        link_busy: r.vec_u64()?,
        link_flits: r.vec_u64()?,
    };
    if network.link_flits.len() != network.link_busy.len() {
        return Err(CkptError::BadValue { what: "network link vector lengths" });
    }
    let n_mc = r.len(24)?;
    let memctrls = (0..n_mc)
        .map(|_| {
            Ok(MemCtrlState {
                busy_until: r.vec_u64()?,
                requests: r.u64()?,
                total_queue_delay: r.u64()?,
            })
        })
        .collect::<D<Vec<_>>>()?;
    let n_ft = r.len(16)?;
    let mut first_touch = Vec::with_capacity(n_ft);
    for _ in 0..n_ft {
        let page = r.u64()?;
        let node = r.usize_checked("first-touch node")?;
        first_touch.push((page, node));
    }
    let n_ov = r.len(16)?;
    let mut overrides = Vec::with_capacity(n_ov);
    for _ in 0..n_ov {
        let page = r.u64()?;
        let node = r.usize_checked("override node")?;
        overrides.push((page, node));
    }
    let n_touch = r.len(16)?;
    let mut touches = Vec::with_capacity(n_touch);
    for _ in 0..n_touch {
        let page = r.u64()?;
        let counts = r.vec_u64()?;
        touches.push((page, counts));
    }
    let track = r.boolean("touch tracking")?;
    let n_locks = r.len(17)?;
    let locks = (0..n_locks)
        .map(|_| {
            let id = r.u32_checked("lock id")?;
            let owner = match r.opt_u64("lock owner")? {
                None => None,
                Some(o) => {
                    Some(usize::try_from(o).map_err(|_| CkptError::BadValue { what: "lock owner" })?)
                }
            };
            let waiters = r
                .vec_u64()?
                .into_iter()
                .map(|x| usize::try_from(x).map_err(|_| CkptError::BadValue { what: "lock waiter" }))
                .collect::<D<Vec<_>>>()?;
            Ok(LockSnap { id, owner, waiters })
        })
        .collect::<D<Vec<_>>>()?;
    let barrier = BarrierSnap {
        current_id: match r.opt_u64("barrier id")? {
            None => None,
            Some(i) => {
                Some(u32::try_from(i).map_err(|_| CkptError::BadValue { what: "barrier id" })?)
            }
        },
        arrived: r.vec_u64()?,
        arrival_cycle: r.vec_u64()?,
    };
    let fault = FaultSnap {
        draws: r.u64()?,
        stats: dsm_sim::FaultStats {
            messages: r.u64()?,
            drops: r.u64()?,
            retries: r.u64()?,
            forced_deliveries: r.u64()?,
            duplicates: r.u64()?,
            spikes: r.u64()?,
            spike_cycles: r.u64()?,
            timeout_wait_cycles: r.u64()?,
            slowdown_events: r.u64()?,
            slowdown_cycles: r.u64()?,
        },
    };
    let n_pend = r.len(1)?;
    let pending = (0..n_pend)
        .map(|_| {
            Ok(match r.u8()? {
                0 => None,
                1 => Some(r.event()?),
                t => return Err(CkptError::BadTag { what: "pending slot", tag: t as u64 }),
            })
        })
        .collect::<D<Vec<_>>>()?;
    let events_executed = r.u64()?;
    let fetched = r.vec_u64()?;
    let dvfs_num = r.vec_u64()?;
    let reconfig = ReconfigSnap {
        dvfs_num,
        stats: ReconfigStats {
            migrations: r.u64()?,
            migration_stall_cycles: r.u64()?,
            dvfs_epochs: r.u64()?,
            dvfs_extra_cycles: r.u64()?,
            dvfs_saved_cycles: r.u64()?,
            core_switches: r.u64()?,
        },
    };
    let st = SystemState {
        procs,
        directory: DirectoryState { entries, stats },
        network,
        memctrls,
        home: HomeMapState { first_touch, overrides, touches, track },
        reconfig,
        locks,
        barrier,
        fault,
        pending,
        events_executed,
        fetched,
    };
    let n = st.procs.len();
    if n == 0
        || st.pending.len() != n
        || st.fetched.len() != n
        || st.barrier.arrival_cycle.len() != n
        || st.barrier.arrived.len() != n.div_ceil(64)
        || st.memctrls.len() != n
    {
        return Err(CkptError::BadValue { what: "per-processor vector lengths" });
    }
    if !(st.reconfig.dvfs_num.is_empty() || st.reconfig.dvfs_num.len() == n)
        || st.home.touches.iter().any(|(_, c)| c.len() != n)
    {
        return Err(CkptError::BadValue { what: "reconfiguration vector lengths" });
    }
    Ok(st)
}

fn put_record(w: &mut W, rec: &IntervalRecord) {
    w.u64(rec.proc as u64);
    w.u64(rec.index);
    w.u64(rec.insns);
    w.u64(rec.cycles);
    w.vec_f64(&rec.bbv);
    w.vec_u64(&rec.fvec);
    w.vec_u64(&rec.cvec);
    w.f64(rec.dds);
    w.vec_u64(&rec.ws_sig);
    w.u64(rec.branches);
}

fn get_record(r: &mut R) -> D<IntervalRecord> {
    Ok(IntervalRecord {
        proc: r.usize_checked("record proc")?,
        index: r.u64()?,
        insns: r.u64()?,
        cycles: r.u64()?,
        bbv: r.vec_f64()?,
        fvec: r.vec_u64()?,
        cvec: r.vec_u64()?,
        dds: r.f64()?,
        ws_sig: r.vec_u64()?,
        branches: r.u64()?,
    })
}

fn put_collector(w: &mut W, c: &CollectorState) {
    w.u64(c.bbv.len() as u64);
    for b in &c.bbv {
        w.vec_u64(b);
    }
    w.u64(c.ws.len() as u64);
    for s in &c.ws {
        w.vec_u64(s);
    }
    w.vec_u64(&c.branches);
    w.u64(c.ddv.mats.len() as u64);
    for m in &c.ddv.mats {
        w.vec_u64(&m.cum);
        w.vec_u64(&m.snap);
    }
    w.vec_u64(&c.ddv.gcum);
    w.vec_u64(&c.ddv.gsnap);
    w.u64(c.ddv.queries);
    w.u64(c.ddv.vectors_exchanged);
    w.u64(c.ddv.gather_rounds);
    w.u64(c.records.len() as u64);
    for recs in &c.records {
        w.u64(recs.len() as u64);
        for rec in recs {
            put_record(w, rec);
        }
    }
}

fn get_collector(r: &mut R, n_procs: usize) -> D<CollectorState> {
    let n_bbv = r.len(8)?;
    let bbv = (0..n_bbv).map(|_| r.vec_u64()).collect::<D<Vec<_>>>()?;
    let n_ws = r.len(8)?;
    let ws = (0..n_ws).map(|_| r.vec_u64()).collect::<D<Vec<_>>>()?;
    let branches = r.vec_u64()?;
    let n_mats = r.len(16)?;
    let mats = (0..n_mats)
        .map(|_| Ok(FrequencySnap { cum: r.vec_u64()?, snap: r.vec_u64()? }))
        .collect::<D<Vec<_>>>()?;
    let ddv = DdvSnap {
        mats,
        gcum: r.vec_u64()?,
        gsnap: r.vec_u64()?,
        queries: r.u64()?,
        vectors_exchanged: r.u64()?,
        gather_rounds: r.u64()?,
    };
    let n_rec = r.len(8)?;
    let records = (0..n_rec)
        .map(|_| {
            let n = r.len(80)?;
            (0..n).map(|_| get_record(r)).collect::<D<Vec<_>>>()
        })
        .collect::<D<Vec<_>>>()?;
    let c = CollectorState { bbv, ws, branches, ddv, records };
    if c.bbv.len() != n_procs
        || c.ws.len() != n_procs
        || c.branches.len() != n_procs
        || c.ddv.mats.len() != n_procs
        || c.records.len() != n_procs
        || c.ddv.gcum.len() != n_procs
        || c.ddv.gsnap.len() != n_procs * n_procs
        || c.ddv.mats.iter().any(|m| m.cum.len() != n_procs || m.snap.len() != n_procs * n_procs)
    {
        return Err(CkptError::BadValue { what: "collector sized for a different machine" });
    }
    Ok(c)
}

fn put_adapt(w: &mut W, a: &AdaptSnap) {
    w.u64(a.target);
    w.u64(a.processed);
    w.u64(a.phases.len() as u64);
    for p in &a.phases {
        w.u64(p.phase as u64);
        match p.state {
            PhaseStateSnap::Tuning { config, trials_left, best_config, best_score, acc, acc_n } => {
                w.u8(0);
                w.u64(config);
                w.u64(trials_left);
                w.u64(best_config);
                w.f64(best_score);
                w.f64(acc);
                w.u64(acc_n);
            }
            PhaseStateSnap::Locked { config } => {
                w.u8(1);
                w.u64(config);
            }
        }
    }
    w.u64(a.decisions.len() as u64);
    for d in &a.decisions {
        w.u64(d.interval);
        w.u64(d.phase as u64);
        match d.kind {
            DecisionKind::Trial { config } => {
                w.u8(0);
                w.u64(config as u64);
            }
            DecisionKind::Lock { config } => {
                w.u8(1);
                w.u64(config as u64);
            }
        }
    }
    w.u64(a.stream.len() as u64);
    for o in &a.stream {
        w.u64(o.index);
        w.u64(o.phase as u64);
        w.f64(o.cpi);
        w.boolean(o.degraded);
    }
    w.u64(a.retunes);
    w.vec_u64(&a.actuator);
}

fn get_adapt(r: &mut R) -> D<AdaptSnap> {
    let target = r.u64()?;
    let processed = r.u64()?;
    let n_phases = r.len(17)?;
    let phases = (0..n_phases)
        .map(|_| {
            let phase = r.u32_checked("adapt phase id")?;
            let state = match r.u8()? {
                0 => PhaseStateSnap::Tuning {
                    config: r.u64()?,
                    trials_left: r.u64()?,
                    best_config: r.u64()?,
                    best_score: r.f64()?,
                    acc: r.f64()?,
                    acc_n: r.u64()?,
                },
                1 => PhaseStateSnap::Locked { config: r.u64()? },
                t => return Err(CkptError::BadTag { what: "adapt phase state", tag: t as u64 }),
            };
            Ok(PhaseSnap { phase, state })
        })
        .collect::<D<Vec<_>>>()?;
    let n_dec = r.len(25)?;
    let decisions = (0..n_dec)
        .map(|_| {
            let interval = r.u64()?;
            let phase = r.u32_checked("decision phase id")?;
            let kind = match r.u8()? {
                0 => DecisionKind::Trial { config: r.usize_checked("trial config")? },
                1 => DecisionKind::Lock { config: r.usize_checked("locked config")? },
                t => return Err(CkptError::BadTag { what: "decision kind", tag: t as u64 }),
            };
            Ok(Decision { interval, phase, kind })
        })
        .collect::<D<Vec<_>>>()?;
    let n_stream = r.len(25)?;
    let stream = (0..n_stream)
        .map(|_| {
            Ok(ObservedInterval {
                index: r.u64()?,
                phase: r.u32_checked("observed phase id")?,
                cpi: r.f64()?,
                degraded: r.boolean("observed degraded")?,
            })
        })
        .collect::<D<Vec<_>>>()?;
    let a = AdaptSnap {
        target,
        processed,
        phases,
        decisions,
        stream,
        retunes: r.u64()?,
        actuator: r.vec_u64()?,
    };
    // `processed` counts proc-0 records consumed, which legitimately runs
    // ahead of the global minimum boundary `target` — only the stream-length
    // pairing is an invariant.
    if a.processed as usize != a.stream.len() {
        return Err(CkptError::BadValue { what: "adapt stream length" });
    }
    Ok(a)
}

impl Checkpoint {
    /// Serialize to the `DSMCKPT5` byte format. Deterministic: the same
    /// checkpoint always encodes to the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = W { out: Vec::with_capacity(4096) };
        w.out.extend_from_slice(MAGIC);
        let m = &self.meta;
        let app_idx = App::EXTENDED.iter().position(|a| *a == m.app).expect("known app") as u8;
        w.u8(app_idx);
        w.u64(m.n_procs as u64);
        w.u8(match m.scale {
            Scale::Test => 0,
            Scale::Scaled => 1,
            Scale::Paper => 2,
        });
        w.u64(m.interval_base);
        let topo_idx =
            TopologyKind::ALL.iter().position(|k| *k == m.topology).expect("known topology") as u8;
        w.u8(topo_idx);
        w.boolean(m.link_contention);
        let p = &m.plan;
        w.u64(p.seed);
        w.u64(p.drop_ppm as u64);
        w.u64(p.duplicate_ppm as u64);
        w.u64(p.spike_ppm as u64);
        w.u64(p.spike_cycles);
        w.u64(p.slowdown_ppm as u64);
        w.u64(p.slowdown_window_cycles);
        w.u64(p.slowdown_extra_num);
        w.u64(p.slowdown_issue_num);
        w.opt_u64(p.slowdown_node.map(|n| n as u64));
        w.u64(p.slowdown_from_cycle);
        w.u64(p.slowdown_until_cycle);
        w.u64(p.retry.timeout_cycles);
        w.u64(p.retry.max_backoff_cycles);
        w.u64(p.retry.max_retries as u64);
        w.u64(m.geometry.bbv_entries as u64);
        w.u64(m.geometry.footprint_vectors as u64);
        w.u64(m.geometry.ws_bits as u64);
        w.u64(m.interval_index);
        w.u64(m.shards as u64);
        put_system(&mut w, &self.system);
        put_collector(&mut w, &self.collector);
        match &self.adapt {
            None => w.u8(0),
            Some(a) => {
                w.u8(1);
                put_adapt(&mut w, a);
            }
        }
        w.out
    }

    /// Decode a `DSMCKPT5` buffer. Total: any input yields `Ok` or a typed
    /// [`CkptError`]; never panics, never over-allocates on hostile lengths.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC_FAMILY.len()] != MAGIC_FAMILY {
            return Err(CkptError::BadMagic);
        }
        let version = bytes[MAGIC_FAMILY.len()];
        if version != MAGIC[MAGIC_FAMILY.len()] {
            return Err(CkptError::UnsupportedVersion { version });
        }
        let mut r = R { b: &bytes[MAGIC.len()..] };
        let app_tag = r.u8()?;
        let app = *App::EXTENDED
            .get(app_tag as usize)
            .ok_or(CkptError::BadTag { what: "app", tag: app_tag as u64 })?;
        let n_procs = r.usize_checked("n_procs")?;
        if n_procs == 0 || n_procs > 4096 {
            return Err(CkptError::BadValue { what: "n_procs" });
        }
        let scale = match r.u8()? {
            0 => Scale::Test,
            1 => Scale::Scaled,
            2 => Scale::Paper,
            t => return Err(CkptError::BadTag { what: "scale", tag: t as u64 }),
        };
        let interval_base = r.u64()?;
        let topo_tag = r.u8()?;
        let topology = *TopologyKind::ALL
            .get(topo_tag as usize)
            .ok_or(CkptError::BadTag { what: "topology", tag: topo_tag as u64 })?;
        let link_contention = r.boolean("link_contention")?;
        let plan = FaultPlan {
            seed: r.u64()?,
            drop_ppm: r.u32_checked("drop_ppm")?,
            duplicate_ppm: r.u32_checked("duplicate_ppm")?,
            spike_ppm: r.u32_checked("spike_ppm")?,
            spike_cycles: r.u64()?,
            slowdown_ppm: r.u32_checked("slowdown_ppm")?,
            slowdown_window_cycles: r.u64()?,
            slowdown_extra_num: r.u64()?,
            slowdown_issue_num: r.u64()?,
            slowdown_node: r.opt_u64("slowdown_node")?.map(|n| n as usize),
            slowdown_from_cycle: r.u64()?,
            slowdown_until_cycle: r.u64()?,
            retry: RetryPolicy {
                timeout_cycles: r.u64()?,
                max_backoff_cycles: r.u64()?,
                max_retries: r.u32_checked("max_retries")?,
            },
        };
        let geometry = DetectorGeometry {
            bbv_entries: r.usize_checked("bbv_entries")?,
            footprint_vectors: r.usize_checked("footprint_vectors")?,
            ws_bits: r.usize_checked("ws_bits")?,
        };
        let interval_index = r.u64()?;
        let shards = r.usize_checked("shards")?;
        if shards > n_procs {
            return Err(CkptError::BadValue { what: "shards" });
        }
        let system = get_system(&mut r)?;
        if system.procs.len() != n_procs {
            return Err(CkptError::BadValue { what: "system sized for a different machine" });
        }
        let collector = get_collector(&mut r, n_procs)?;
        let adapt = match r.u8()? {
            0 => None,
            1 => Some(get_adapt(&mut r)?),
            t => return Err(CkptError::BadTag { what: "adapt presence", tag: t as u64 }),
        };
        if !r.b.is_empty() {
            return Err(CkptError::TrailingBytes);
        }
        Ok(Checkpoint {
            meta: CheckpointMeta {
                app,
                n_procs,
                scale,
                interval_base,
                topology,
                link_contention,
                plan,
                geometry,
                interval_index,
                shards,
            },
            system,
            collector,
            adapt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::directory::DirectoryStats;
    use dsm_sim::{FaultStats, ProcStats};

    fn sample_checkpoint() -> Checkpoint {
        let cache = |k: u64| CacheState {
            tags: vec![k, k + 1, 0],
            lru: vec![3, 2, 1],
            clock: 9 + k,
            hits: 5,
            misses: 2,
        };
        let proc = |p: u64| ProcessorState {
            cycle: 1000 + p,
            commit_carry: 3,
            fp_carry: 1,
            interval_progress: 42,
            interval_start_cycle: 900,
            interval_index: 7,
            finished: false,
            blocked: p == 1,
            blocked_since: 950,
            stats: ProcStats { cycles: 1000 + p, insns: 800, ..Default::default() },
            l1: cache(p),
            l2: cache(p + 10),
            gshare: GshareState {
                table: vec![0, 1, 2, 3],
                history: 0b1011,
                predictions: 60,
                mispredictions: 4,
            },
            core: CoreConfig {
                commit_width: 2 + p as u32,
                fpu_units: 2,
                mispredict_penalty: 8,
                gshare_entries: 4,
                stall_exposure_num: 110,
            },
        };
        Checkpoint {
            meta: CheckpointMeta {
                app: App::Fmm,
                n_procs: 2,
                scale: Scale::Test,
                interval_base: 16_000,
                topology: TopologyKind::Torus2D,
                link_contention: true,
                plan: FaultPlan::mixed(7, 0.01),
                geometry: DetectorGeometry::default(),
                interval_index: 7,
                shards: 0,
            },
            system: SystemState {
                procs: vec![proc(0), proc(1)],
                directory: DirectoryState {
                    entries: vec![(4, DirState::Shared(0b11)), (9, DirState::Exclusive(1))],
                    stats: DirectoryStats { reads: 12, writes: 3, ..Default::default() },
                },
                network: NetworkState {
                    msgs: 40,
                    payload_msgs: 13,
                    total_hops: 55,
                    link_wait_cycles: 6,
                    total_flit_hops: 130,
                    link_busy: vec![100, 90],
                    link_flits: vec![52, 78],
                },
                memctrls: vec![
                    MemCtrlState { busy_until: vec![50, 60], requests: 7, total_queue_delay: 11 },
                    MemCtrlState { busy_until: vec![0, 0], requests: 0, total_queue_delay: 0 },
                ],
                home: HomeMapState {
                    first_touch: vec![(1, 0), (5, 1)],
                    overrides: vec![(5, 0)],
                    touches: vec![(1, vec![3, 9]), (5, vec![8, 0])],
                    track: true,
                },
                reconfig: ReconfigSnap {
                    dvfs_num: vec![224, 288],
                    stats: ReconfigStats {
                        migrations: 1,
                        migration_stall_cycles: 48,
                        dvfs_epochs: 2,
                        dvfs_extra_cycles: 0,
                        dvfs_saved_cycles: 0,
                        core_switches: 1,
                    },
                },
                locks: vec![LockSnap { id: 0, owner: Some(1), waiters: vec![0] }],
                barrier: BarrierSnap {
                    current_id: Some(3),
                    arrived: vec![0b10],
                    arrival_cycle: vec![0, 998],
                },
                fault: FaultSnap {
                    draws: 77,
                    stats: FaultStats { messages: 40, drops: 2, ..Default::default() },
                },
                pending: vec![Some(Event::Mem { addr: 0x40, write: true }), None],
                events_executed: 512,
                fetched: vec![260, 255],
            },
            collector: CollectorState {
                bbv: vec![vec![1, 0, 7], vec![0, 0, 2]],
                ws: vec![vec![0b101], vec![0]],
                branches: vec![11, 3],
                ddv: DdvSnap {
                    mats: vec![
                        FrequencySnap { cum: vec![4, 1], snap: vec![0, 0, 4, 1] },
                        FrequencySnap { cum: vec![2, 2], snap: vec![1, 1, 0, 0] },
                    ],
                    gcum: vec![6, 3],
                    gsnap: vec![1, 1, 4, 1],
                    queries: 14,
                    vectors_exchanged: 14,
                    gather_rounds: 14,
                },
                records: vec![
                    vec![IntervalRecord {
                        proc: 0,
                        index: 0,
                        insns: 100,
                        cycles: 210,
                        bbv: vec![0.25, 0.75, 0.0],
                        fvec: vec![3, 1],
                        cvec: vec![5, 1],
                        dds: 17.5,
                        ws_sig: vec![0b11],
                        branches: 9,
                    }],
                    vec![],
                ],
            },
            adapt: None,
        }
    }

    fn sample_adapt() -> AdaptSnap {
        AdaptSnap {
            target: 4,
            processed: 3,
            phases: vec![
                PhaseSnap {
                    phase: 0,
                    state: PhaseStateSnap::Tuning {
                        config: 2,
                        trials_left: 1,
                        best_config: 1,
                        best_score: 1.75,
                        acc: 0.5,
                        acc_n: 0,
                    },
                },
                PhaseSnap { phase: 3, state: PhaseStateSnap::Locked { config: 1 } },
            ],
            decisions: vec![
                Decision { interval: 0, phase: 0, kind: DecisionKind::Trial { config: 0 } },
                Decision { interval: 2, phase: 3, kind: DecisionKind::Lock { config: 1 } },
            ],
            stream: vec![
                ObservedInterval { index: 0, phase: 0, cpi: 1.5, degraded: false },
                ObservedInterval { index: 1, phase: 0, cpi: 1.25, degraded: true },
                ObservedInterval { index: 2, phase: 3, cpi: 2.0, degraded: false },
            ],
            retunes: 2,
            actuator: vec![7, 9],
        }
    }

    #[test]
    fn roundtrip_is_identity_and_deterministic() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();
        assert_eq!(bytes, ck.encode(), "encoding must be deterministic");
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.encode(), bytes, "re-encoding must reproduce the bytes");
    }

    #[test]
    fn roundtrip_carries_targeted_straggler_plan() {
        // Version 5's reason to exist: the targeted-slowdown fields survive
        // the round trip, `Some` and `None` alike (the `None` arm rides in
        // every other test via `FaultPlan::mixed`).
        let mut ck = sample_checkpoint();
        ck.meta.plan = FaultPlan::straggler(99, 1, 10_000, 90_000);
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back.meta.plan.slowdown_node, Some(1));
        assert_eq!(back.meta.plan.slowdown_from_cycle, 10_000);
        assert_eq!(back.meta.plan.slowdown_until_cycle, 90_000);
        assert_eq!(back, ck);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn roundtrip_with_adapt_section() {
        let mut ck = sample_checkpoint();
        ck.adapt = Some(sample_adapt());
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.encode(), bytes);
        // Every truncation of the adapt tail still errors cleanly.
        let plain_len = { sample_checkpoint().encode().len() };
        for cut in plain_len..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn inconsistent_adapt_stream_rejected() {
        let mut ck = sample_checkpoint();
        let mut a = sample_adapt();
        a.stream.pop(); // processed no longer matches the stream length
        ck.adapt = Some(a);
        assert_eq!(
            Checkpoint::decode(&ck.encode()),
            Err(CkptError::BadValue { what: "adapt stream length" })
        );
    }

    #[test]
    fn mismatched_dvfs_vector_rejected() {
        let mut ck = sample_checkpoint();
        ck.system.reconfig.dvfs_num = vec![256]; // machine has 2 procs
        assert_eq!(
            Checkpoint::decode(&ck.encode()),
            Err(CkptError::BadValue { what: "reconfiguration vector lengths" })
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Checkpoint::decode(b""), Err(CkptError::BadMagic));
        assert_eq!(Checkpoint::decode(b"DSMTRC2\n"), Err(CkptError::BadMagic));
        assert_eq!(Checkpoint::decode(b"DSMTRC3\n"), Err(CkptError::BadMagic));
    }

    #[test]
    fn old_and_future_versions_report_unsupported_version() {
        // A pre-fabric DSMCKPT1 body is not decodable by this build: the
        // version digit alone must produce the typed error, never a panic,
        // regardless of what follows it.
        for (payload, version) in [
            (&b"DSMCKPT1"[..], b'1'),
            (b"DSMCKPT1\x00\x01\x02\x03", b'1'),
            (b"DSMCKPT2\x00\x01\x02\x03", b'2'),
            (b"DSMCKPT3\x00\x01\x02\x03", b'3'),
            (b"DSMCKPT4\x00\x01\x02\x03", b'4'),
            (b"DSMCKPT9garbage", b'9'),
        ] {
            assert_eq!(
                Checkpoint::decode(payload),
                Err(CkptError::UnsupportedVersion { version }),
                "payload {payload:?}"
            );
        }
        let mut bytes = sample_checkpoint().encode();
        bytes[7] = b'1';
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CkptError::UnsupportedVersion { version: b'1' })
        );
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = sample_checkpoint().encode();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_checkpoint().encode();
        bytes.push(0);
        assert_eq!(Checkpoint::decode(&bytes), Err(CkptError::TrailingBytes));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        let mut bytes = sample_checkpoint().encode();
        // Overwrite the first post-meta length field region with a huge
        // value; the guard must reject it before reserving memory.
        let off = bytes.len() - 9;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Checkpoint::decode(&bytes).is_err());
    }

    #[test]
    fn corrupted_tag_reports_bad_tag() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();
        let mut bad = bytes.clone();
        bad[8] = 200; // app tag
        assert_eq!(Checkpoint::decode(&bad), Err(CkptError::BadTag { what: "app", tag: 200 }));
    }
}
