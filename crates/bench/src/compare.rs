//! Branch-vs-baseline speedup maps shared by the `bench_sim` and
//! `bench_serve` binaries.

use dsm_harness::json::Json;

/// Per-key ratios `current/baseline` for the named rate map, plus their
/// geometric mean. Coverage drift is reported symmetrically instead of
/// silently skipped: keys measured now but absent from the recorded map —
/// a baseline written before the bench matrix grew — appear as
/// `"new entry"`, and keys recorded in the baseline but no longer measured
/// — the matrix shrank, or a point was renamed — appear as
/// `"removed entry"`. The geomean covers only keys present on both sides.
pub fn speedups(baseline: &Json, current: &Json, map_key: &str) -> Json {
    let mut out = Json::obj();
    let mut log_sum = 0.0;
    let mut count = 0usize;
    if let (Some(Json::Obj(base)), Some(cur)) = (baseline.get(map_key), current.get(map_key)) {
        for (key, bv) in base {
            match (bv.as_f64(), cur.get(key).and_then(Json::as_f64)) {
                (Some(b), Some(c)) if b > 0.0 && c > 0.0 => {
                    let r = c / b;
                    out = out.field(key, (r * 1000.0).round() / 1000.0);
                    log_sum += r.ln();
                    count += 1;
                }
                (Some(_), None) => {
                    out = out.field(key, "removed entry");
                }
                _ => {}
            }
        }
        if let Json::Obj(cur) = cur {
            for (key, cv) in cur {
                if cv.as_f64().is_some() && base.iter().all(|(k, _)| k != key) {
                    out = out.field(key, "new entry");
                }
            }
        }
    }
    let geomean = if count > 0 { (log_sum / count as f64).exp() } else { 1.0 };
    out.field("geomean", (geomean * 1000.0).round() / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(pairs: &[(&str, f64)]) -> Json {
        let map = pairs.iter().fold(Json::obj(), |o, (k, v)| o.field(k, *v));
        Json::obj().field("events_per_sec", map)
    }

    #[test]
    fn speedups_reports_matrix_growth_as_new_entries() {
        // Baseline recorded before the 64P/128P scale points existed.
        let baseline = eps(&[("lu-2p", 100.0), ("lu-8p", 50.0)]);
        let current = eps(&[("lu-2p", 200.0), ("lu-8p", 50.0), ("ocean-64p", 10.0)]);
        let s = speedups(&baseline, &current, "events_per_sec");
        assert_eq!(s.get("lu-2p").and_then(Json::as_f64), Some(2.0));
        assert_eq!(s.get("lu-8p").and_then(Json::as_f64), Some(1.0));
        assert_eq!(s.get("ocean-64p").and_then(Json::as_str), Some("new entry"));
        // Geomean covers only the shared keys: sqrt(2.0 * 1.0).
        let g = s.get("geomean").and_then(Json::as_f64).unwrap();
        assert!((g - 1.414).abs() < 1e-9, "geomean = {g}");
    }

    #[test]
    fn speedups_reports_matrix_shrink_as_removed_entries() {
        // The baseline recorded a point the current tree no longer
        // measures (dropped from the matrix or renamed). That must be
        // surfaced symmetrically with the "new entry" path — not a silent
        // success that hides lost coverage.
        let baseline = eps(&[("lu-2p", 100.0), ("radix-8p", 75.0)]);
        let current = eps(&[("lu-2p", 150.0)]);
        let s = speedups(&baseline, &current, "events_per_sec");
        assert_eq!(s.get("lu-2p").and_then(Json::as_f64), Some(1.5));
        assert_eq!(s.get("radix-8p").and_then(Json::as_str), Some("removed entry"));
        // Geomean still covers only the shared keys.
        assert_eq!(s.get("geomean").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn speedups_identical_maps_have_no_drift_entries() {
        let baseline = eps(&[("lu-2p", 100.0)]);
        let s = speedups(&baseline, &baseline, "events_per_sec");
        assert_eq!(s.get("lu-2p").and_then(Json::as_f64), Some(1.0));
        assert_eq!(s.get("geomean").and_then(Json::as_f64), Some(1.0));
        match s {
            Json::Obj(fields) => assert_eq!(fields.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn speedups_works_for_other_rate_maps() {
        let mk = |pairs: &[(&str, f64)]| {
            let map = pairs.iter().fold(Json::obj(), |o, (k, v)| o.field(k, *v));
            Json::obj().field("classifications_per_sec", map)
        };
        let baseline = mk(&[("64-tenants", 1000.0)]);
        let current = mk(&[("64-tenants", 2000.0), ("1024-tenants", 500.0)]);
        let s = speedups(&baseline, &current, "classifications_per_sec");
        assert_eq!(s.get("64-tenants").and_then(Json::as_f64), Some(2.0));
        assert_eq!(s.get("1024-tenants").and_then(Json::as_str), Some("new entry"));
    }
}
