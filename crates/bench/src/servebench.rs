//! Phase-server load measurements behind `BENCH_SERVE.json`.
//!
//! Each point runs the `phased --smoke`-equivalent scenario at a tenant
//! count from [`SERVE_TENANTS`] — the whole fleet concurrent, short
//! synthetic streams, mixed disturbances — through the public harness
//! driver ([`dsm_harness::serve::run_scenario`]). The deterministic outcome
//! (latency percentiles in ticks, queue high-waters, backpressure counts)
//! is cross-checked bit-identical across samples; only the wall-clock rate
//! varies, and like `simbench` the reported figure is the minimum-time
//! (maximum-rate) sample, the statistic least sensitive to host scheduling
//! noise.

use dsm_harness::json::Json;
use dsm_harness::serve::{run_scenario, ServeOutcome, ServeScenario};

/// Tenant counts of the serve bench matrix (all-concurrent smoke fleets).
pub const SERVE_TENANTS: [usize; 3] = [64, 256, 1024];

/// Seed shared by every bench scenario (same as `phased`'s default).
pub const SERVE_SEED: u64 = 42;

/// Stable key for one serve-matrix point, e.g. `64-tenants`.
pub fn serve_point_key(tenants: usize) -> String {
    format!("{tenants}-tenants")
}

/// One measured point: the deterministic scenario outcome plus the
/// least-noise wall-clock rate.
#[derive(Debug, Clone)]
pub struct ServePoint {
    pub tenants: usize,
    /// Minimum wall-clock seconds over the samples.
    pub wall_secs: f64,
    /// `classified / wall_secs` for the fastest sample.
    pub classifications_per_sec: f64,
    pub outcome: ServeOutcome,
}

impl ServePoint {
    /// Deterministic per-point detail (everything but the wall-clock rate).
    pub fn detail_json(&self) -> Json {
        Json::obj()
            .field("tenants", self.tenants)
            .field("classified", self.outcome.classified)
            .field("offered", self.outcome.offered)
            .field("accepted", self.outcome.accepted)
            .field("busy_events", self.outcome.busy_events)
            .field("output_stalls", self.outcome.output_stalls)
            .field("queue_high_water", self.outcome.queue_high_water)
            .field("peak_resident_footprint", self.outcome.peak_resident_footprint)
            .field(
                "latency_ticks",
                Json::obj()
                    .field("p50", self.outcome.latency_ticks.0)
                    .field("p99", self.outcome.latency_ticks.1)
                    .field("p999", self.outcome.latency_ticks.2),
            )
    }
}

/// Measure the whole serve matrix. Panics if any scenario's deterministic
/// outcome drifts between samples — that would mean the server is not a
/// pure function of the scenario, which the property suite forbids.
pub fn measure_serve(samples: usize) -> Vec<ServePoint> {
    SERVE_TENANTS
        .iter()
        .map(|&tenants| {
            let sc = ServeScenario::smoke(tenants, SERVE_SEED);
            let mut best = f64::INFINITY;
            let mut outcome: Option<ServeOutcome> = None;
            for _ in 0..samples.max(1) {
                let (out, timing) = run_scenario(&sc);
                if let Some(prev) = &outcome {
                    assert_eq!(prev, &out, "serve outcome drifted between samples");
                }
                best = best.min(timing.wall_secs);
                outcome = Some(out);
            }
            let outcome = outcome.expect("at least one sample");
            let classifications_per_sec = if best > 0.0 {
                outcome.classified as f64 / best
            } else {
                0.0
            };
            ServePoint { tenants, wall_secs: best, classifications_per_sec, outcome }
        })
        .collect()
}

/// Serialize one measurement section of `BENCH_SERVE.json`.
pub fn serve_section_json(points: &[ServePoint], label: &str) -> Json {
    let rates = points.iter().fold(Json::obj(), |o, p| {
        o.field(&serve_point_key(p.tenants), round3(p.classifications_per_sec))
    });
    Json::obj()
        .field("label", label)
        .field("classifications_per_sec", rates)
        .field(
            "points",
            Json::Arr(points.iter().map(ServePoint::detail_json).collect()),
        )
}

/// Round like `simbench`: wall-clock rates don't carry sub-millidigit
/// precision run to run.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_point_keys_are_stable() {
        assert_eq!(serve_point_key(64), "64-tenants");
        assert_eq!(serve_point_key(1024), "1024-tenants");
    }

    #[test]
    fn smallest_point_measures_and_serializes() {
        let sc = ServeScenario::smoke(8, SERVE_SEED);
        let (out, timing) = run_scenario(&sc);
        assert!(out.classified > 0);
        assert!(timing.wall_secs >= 0.0);
        let p = ServePoint {
            tenants: 8,
            wall_secs: timing.wall_secs.max(1e-9),
            classifications_per_sec: out.classified as f64 / timing.wall_secs.max(1e-9),
            outcome: out,
        };
        let j = serve_section_json(&[p], "x");
        assert!(j
            .get("classifications_per_sec")
            .and_then(|m| m.get("8-tenants"))
            .and_then(Json::as_f64)
            .is_some());
        let detail = j.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(detail.len(), 1);
        let lt = detail[0].get("latency_ticks").expect("latency group");
        for key in ["p50", "p99", "p999"] {
            assert!(lt.get(key).and_then(Json::as_f64).is_some(), "missing {key}");
        }
    }
}
