//! Simulator-throughput and pipeline measurements behind `BENCH_SIM.json`.
//!
//! Everything here is plain `Instant` timing over the public simulator and
//! harness APIs, so the `bench_sim` binary can emit a machine-readable
//! baseline without depending on the Criterion harness. Event counts are
//! deterministic (they depend only on the workload generators); wall-clock
//! rates are minimum-over-samples of many-run averages, the statistic least
//! sensitive to host scheduling noise.

use std::time::Instant;

use dsm_harness::json::Json;
use dsm_harness::simpoint::capture_with_checkpoints;
use dsm_harness::sweep::{bbv_curve, bbv_ddv_curve};
use dsm_harness::trace::capture;
use dsm_harness::experiment::ExperimentConfig;
use dsm_sim::config::FaultPlan;
use dsm_simpoint::Checkpoint;
use dsm_phase::detector::{DetectorGeometry, DetectorMode, OnlineDetector, Thresholds};
use dsm_sim::event::{Event, InstructionStream};
use dsm_sim::observer::{IntervalStats, SimObserver};
use dsm_sim::system::System;
use dsm_workloads::{make_stream, App, Scale};

use crate::bench_matrix;

/// Stable key for one bench-matrix point, e.g. `lu-2p`.
pub fn point_key(app: App, n_procs: usize) -> String {
    format!("{}-{}p", app.name().to_ascii_lowercase(), n_procs)
}

/// Deterministic number of events the simulator executes for one
/// test-scale configuration (counted by draining a fresh stream; equals
/// [`System::events_executed`] after a run, including each processor's
/// terminating `End`).
pub fn count_events(app: App, n_procs: usize) -> u64 {
    let mut stream = make_stream(app, n_procs, Scale::Test);
    let mut events = 0u64;
    for p in 0..n_procs {
        loop {
            events += 1;
            if stream.next(p) == Event::End {
                break;
            }
        }
    }
    events
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Wall-clock seconds of one test-scale simulation event loop (stream and
/// system construction excluded from the timed region).
///
/// A test-scale run lasts well under a millisecond, so single-run timings
/// are dominated by host scheduling noise. Each sample therefore times
/// [`RUNS_PER_SAMPLE`] back-to-back runs and divides; the reported figure
/// is the *minimum* over samples — the least-contended estimate, which is
/// the stable statistic for microbenchmarks on a shared host (medians
/// wander with steal time).
pub fn time_simulation(app: App, n_procs: usize, samples: usize) -> f64 {
    const RUNS_PER_SAMPLE: u32 = 32;
    let cfg = ExperimentConfig::test(app, n_procs);
    let times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let mut timed = std::time::Duration::ZERO;
            for _ in 0..RUNS_PER_SAMPLE {
                let stream = make_stream(app, n_procs, Scale::Test);
                let sys = System::new(cfg.system_config(), stream, NullObserver2);
                let t0 = Instant::now();
                let _ = sys.run();
                timed += t0.elapsed();
            }
            timed.as_secs_f64() / RUNS_PER_SAMPLE as f64
        })
        .collect();
    times.into_iter().fold(f64::INFINITY, f64::min)
}

/// Local no-op observer (avoids pulling the sim's `NullObserver` into the
/// public signature; behaviourally identical).
struct NullObserver2;

impl SimObserver for NullObserver2 {
    #[inline]
    fn on_block_commit(&mut self, _: usize, _: u32, _: u32) {}
    #[inline]
    fn on_mem_commit(&mut self, _: usize, _: usize, _: u64, _: bool) {}
    #[inline]
    fn on_interval(&mut self, _: usize, _: IntervalStats) {}
}

/// Wall-clock seconds of the end-to-end pipeline for one app: simulate +
/// capture interval features, then run the fig2-style BBV and BBV+DDV
/// threshold sweeps over the captured trace. Minimum over samples, for the
/// same reason as [`time_simulation`].
pub fn time_pipeline(app: App, n_procs: usize, samples: usize) -> f64 {
    let times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let trace = capture(ExperimentConfig::test(app, n_procs));
            let _ = bbv_curve(&trace);
            let _ = bbv_ddv_curve(&trace);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.into_iter().fold(f64::INFINITY, f64::min)
}

/// Steady-state heap allocations per classified interval of the online
/// detector (median over many fixed-size windows, so one-off `Vec` growth
/// does not pollute the figure). Returns 0 unless the calling binary
/// registered [`crate::alloc_track::CountingAlloc`].
pub fn steady_state_allocs_per_interval() -> f64 {
    const N_PROCS: usize = 4;
    const WARMUP: u64 = 256;
    const WINDOWS: usize = 64;
    const PER_WINDOW: u64 = 16;

    let mut det = OnlineDetector::new(
        N_PROCS,
        hypercube_dist(N_PROCS),
        DetectorMode::BbvDdv,
        Thresholds { bbv: 0.5, dds: 0.3 },
        DetectorGeometry::default(),
    );
    let mut index = 0u64;
    let mut drive = |det: &mut OnlineDetector, n: u64| {
        for _ in 0..n {
            // Two alternating signatures so classification exercises both
            // the match and the table-scan path in steady state.
            let code = 7 + (index % 2) as u32 * 1000;
            for p in 0..N_PROCS {
                for b in 0..8 {
                    det.on_block_commit(p, code + b, 50);
                }
                det.on_mem_commit(p, (index % N_PROCS as u64) as usize, 0x40, false);
            }
            for p in 0..N_PROCS {
                det.on_interval(p, IntervalStats { index, insns: 400, cycles: 900 });
            }
            index += 1;
        }
    };
    drive(&mut det, WARMUP);
    let mut per_window = Vec::with_capacity(WINDOWS);
    for _ in 0..WINDOWS {
        let (_, allocs) = crate::alloc_track::allocs_during(|| drive(&mut det, PER_WINDOW));
        per_window.push(allocs as f64);
    }
    median(per_window) / (PER_WINDOW as f64 * N_PROCS as f64)
}

/// Checkpoint round-trip throughput: encode (snapshot serialization) and
/// decode+restore (rebuild a live system) times for one mid-run `DSMCKPT1`
/// checkpoint of test-scale LU at 4 processors, plus its size in bytes.
#[derive(Debug, Clone, Copy)]
pub struct CkptRoundtrip {
    /// Milliseconds to serialize the captured checkpoint.
    pub encode_ms: f64,
    /// Milliseconds to decode the bytes and resurrect a runnable system.
    pub decode_restore_ms: f64,
    /// Encoded checkpoint size in bytes (deterministic).
    pub bytes: u64,
}

/// Measure [`CkptRoundtrip`] (minimum over `samples`, like the other
/// wall-clock figures here). The capture itself is untimed setup.
pub fn measure_checkpoint_roundtrip(samples: usize) -> CkptRoundtrip {
    const BOUNDARY: u64 = 2;
    let config = ExperimentConfig::test(App::Lu, 4);
    let (ckpts, _) = capture_with_checkpoints(config, FaultPlan::none(), &[BOUNDARY]);
    let bytes = &ckpts[0].1;
    let ck = Checkpoint::decode(bytes).expect("fresh checkpoint decodes");

    let mut encode_s = f64::INFINITY;
    let mut decode_restore_s = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let encoded = ck.encode();
        encode_s = encode_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(encoded.len(), bytes.len());

        let t0 = Instant::now();
        let decoded = Checkpoint::decode(bytes).expect("checkpoint decodes");
        let sys = dsm_harness::simpoint::resume_checkpoint(&decoded);
        decode_restore_s = decode_restore_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(sys.min_interval_index(), BOUNDARY);
    }
    CkptRoundtrip {
        encode_ms: encode_s * 1e3,
        decode_restore_ms: decode_restore_s * 1e3,
        bytes: bytes.len() as u64,
    }
}

/// Diagnosis-engine throughput: wall-clock of one full blind diagnostic
/// pass (distance matrix → clustering → flagging → attribution) over the
/// classified streams of a 16-processor straggler capture.
#[derive(Debug, Clone, Copy)]
pub struct DiagnoseBench {
    /// Milliseconds for one `dsm_diagnose::diagnose` pass.
    pub engine_ms: f64,
    /// Fleet size the pass diagnosed.
    pub n_streams: u64,
    /// Total classified intervals across the fleet (deterministic).
    pub intervals: u64,
}

/// Measure [`DiagnoseBench`] (minimum over `samples`). The capture and
/// classification are untimed setup — the figure isolates the engine, which
/// is the part the serve path runs per diagnosis probe.
pub fn measure_diagnose(samples: usize) -> DiagnoseBench {
    use dsm_harness::diagnose::{
        capture_diag, classified_streams, node_telemetry, report_config, straggler_plan,
    };
    let config = ExperimentConfig::test(App::Lu, 16);
    let golden = capture_diag(config, None);
    let (plan, _, _) = straggler_plan(App::Lu, &golden);
    let faulty = capture_diag(config, Some(plan));
    let streams = classified_streams(&faulty);
    let telemetry = node_telemetry(&faulty, &streams);
    let cfg = report_config();

    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let d = dsm_diagnose::diagnose(&cfg, &streams, Some(&telemetry));
        best = best.min(t0.elapsed().as_secs_f64());
        assert!(!d.is_uniform(), "the straggler capture must diagnose as non-uniform");
    }
    DiagnoseBench {
        engine_ms: best * 1e3,
        n_streams: streams.len() as u64,
        intervals: streams.iter().map(|s| s.len() as u64).sum(),
    }
}

fn hypercube_dist(n: usize) -> Vec<f64> {
    let mut dist = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            dist[i * n + j] = if i == j {
                1.0
            } else {
                1.0 + ((i ^ j) as u64).count_ones() as f64
            };
        }
    }
    dist
}

/// One full measurement pass over the bench matrix.
pub struct Measurement {
    /// Deterministic event counts per matrix point.
    pub events: Vec<(String, u64)>,
    /// Simulator throughput in events per wall-clock second (least-noise
    /// estimate; see [`time_simulation`]).
    pub events_per_sec: Vec<(String, f64)>,
    /// End-to-end pipeline time per app, in milliseconds.
    pub pipeline_ms: Vec<(String, f64)>,
    /// Steady-state detector allocation churn (see
    /// [`steady_state_allocs_per_interval`]).
    pub allocs_per_interval: f64,
    /// Checkpoint snapshot/restore throughput (see
    /// [`measure_checkpoint_roundtrip`]).
    pub checkpoint_roundtrip: CkptRoundtrip,
    /// Diagnosis-engine pass time (see [`measure_diagnose`]).
    pub diagnose: DiagnoseBench,
}

/// Run the whole measurement suite (several seconds at test scale).
pub fn measure(samples: usize) -> Measurement {
    let mut events = Vec::new();
    let mut events_per_sec = Vec::new();
    for (app, n) in bench_matrix() {
        let key = point_key(app, n);
        let ev = count_events(app, n);
        let secs = time_simulation(app, n, samples);
        events.push((key.clone(), ev));
        events_per_sec.push((key, ev as f64 / secs));
    }
    let mut pipeline_ms = Vec::new();
    for app in App::ALL {
        pipeline_ms.push((
            app.name().to_ascii_lowercase(),
            time_pipeline(app, 4, samples.min(3)) * 1e3,
        ));
    }
    Measurement {
        events,
        events_per_sec,
        pipeline_ms,
        allocs_per_interval: steady_state_allocs_per_interval(),
        checkpoint_roundtrip: measure_checkpoint_roundtrip(samples),
        diagnose: measure_diagnose(samples),
    }
}

impl Measurement {
    /// Serialize one measurement section of `BENCH_SIM.json`.
    pub fn to_json(&self, label: &str) -> Json {
        let kv = |pairs: &[(String, f64)]| {
            pairs
                .iter()
                .fold(Json::obj(), |o, (k, v)| o.field(k, round3(*v)))
        };
        Json::obj()
            .field("label", label)
            .field(
                "events",
                self.events
                    .iter()
                    .fold(Json::obj(), |o, (k, v)| o.field(k, *v)),
            )
            .field("events_per_sec", kv(&self.events_per_sec))
            .field("pipeline_ms", kv(&self.pipeline_ms))
            .field("allocs_per_interval", self.allocs_per_interval)
            .field(
                "checkpoint_roundtrip",
                Json::obj()
                    .field("encode_ms", round3(self.checkpoint_roundtrip.encode_ms))
                    .field(
                        "decode_restore_ms",
                        round3(self.checkpoint_roundtrip.decode_restore_ms),
                    )
                    .field("bytes", self.checkpoint_roundtrip.bytes),
            )
            .field(
                "diagnose",
                Json::obj()
                    .field("engine_ms", round3(self.diagnose.engine_ms))
                    .field("n_streams", self.diagnose.n_streams)
                    .field("intervals", self.diagnose.intervals),
            )
    }
}

/// Round to 3 significant decimals of the integer part being kept exact —
/// wall-clock rates don't carry more precision run to run.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_counts_are_deterministic_and_positive() {
        let a = count_events(App::Lu, 2);
        let b = count_events(App::Lu, 2);
        assert_eq!(a, b);
        assert!(a > 1000, "test-scale LU should be thousands of events, got {a}");
    }

    #[test]
    fn point_keys_are_stable() {
        assert_eq!(point_key(App::Lu, 2), "lu-2p");
        assert_eq!(point_key(App::Equake, 8), "equake-8p");
    }

    #[test]
    fn measurement_json_has_all_sections() {
        // Tiny sample count: this exercises the full measurement path.
        let m = Measurement {
            events: vec![("lu-2p".into(), 10)],
            events_per_sec: vec![("lu-2p".into(), 1e6)],
            pipeline_ms: vec![("lu".into(), 12.0)],
            allocs_per_interval: 0.0,
            checkpoint_roundtrip: CkptRoundtrip {
                encode_ms: 0.1,
                decode_restore_ms: 0.2,
                bytes: 1024,
            },
            diagnose: DiagnoseBench { engine_ms: 0.5, n_streams: 16, intervals: 300 },
        };
        let j = m.to_json("x");
        for key in ["label", "events", "events_per_sec", "pipeline_ms", "allocs_per_interval"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let ck = j.get("checkpoint_roundtrip").expect("checkpoint group");
        for key in ["encode_ms", "decode_restore_ms", "bytes"] {
            assert!(ck.get(key).is_some(), "missing checkpoint_roundtrip.{key}");
        }
        let dg = j.get("diagnose").expect("diagnose group");
        for key in ["engine_ms", "n_streams", "intervals"] {
            assert!(dg.get(key).is_some(), "missing diagnose.{key}");
        }
    }

    #[test]
    fn checkpoint_roundtrip_measures_real_bytes() {
        let m = measure_checkpoint_roundtrip(1);
        assert!(m.bytes > 0);
        assert!(m.encode_ms >= 0.0 && m.decode_restore_ms >= 0.0);
        // Deterministic codec: the size never wobbles between measurements.
        assert_eq!(m.bytes, measure_checkpoint_roundtrip(1).bytes);
    }
}
