//! A counting global allocator for allocation-churn benches.
//!
//! Binaries that want heap-allocation counts register [`CountingAlloc`] as
//! their `#[global_allocator]`; the counters are process-wide atomics so the
//! measurement helpers in [`crate::simbench`] can read them without
//! threading state through the benchmarked code. When no binary registers
//! the allocator the counters simply stay at zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Pass-through allocator that counts every `alloc`/`realloc` call.
pub struct CountingAlloc;

// SAFETY: defers every operation to the std `System` allocator; the atomic
// counter updates have no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations made so far by this process (0 unless a binary
/// registered [`CountingAlloc`] as its global allocator).
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested so far (same caveat as [`allocations`]).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Allocation count delta around a closure.
pub fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let out = f();
    (out, allocations() - before)
}

/// Publish the process-wide allocation counters into a metrics registry,
/// replacing the ad-hoc printf path of the bench binaries.
pub fn publish(reg: &mut dsm_telemetry::MetricsRegistry) {
    reg.counter_add("bench/alloc/allocations", allocations());
    reg.counter_add("bench/alloc/bytes", allocated_bytes());
}

#[cfg(test)]
mod tests {
    #[test]
    fn publish_mirrors_counters() {
        let mut reg = dsm_telemetry::MetricsRegistry::new();
        super::publish(&mut reg);
        // Without the registered global allocator both counters sit at the
        // current process-wide values (zero in unit tests).
        assert_eq!(
            reg.counter_value("bench/alloc/allocations"),
            Some(super::allocations())
        );
        assert_eq!(
            reg.counter_value("bench/alloc/bytes"),
            Some(super::allocated_bytes())
        );
    }
}
