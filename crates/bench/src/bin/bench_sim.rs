//! `bench_sim` — records and checks the repo's simulator perf baseline.
//!
//! Modes:
//!
//! * (default) measure the current tree and rewrite `BENCH_SIM.json` at the
//!   repo root, preserving the recorded `baseline` section (first run uses
//!   the fresh measurement as the baseline too);
//! * `--reset-baseline` — overwrite the `baseline` section as well;
//! * `--check [path]` — parse the file and verify schema + full
//!   `bench_matrix()` coverage, without measuring anything (CI);
//! * `--compare [path]` — measure the current tree and print speedups
//!   against the file's `current` section (branch-vs-baseline workflow).
//!
//! All output numbers go through the harness's deterministic JSON writer,
//! so equal measurements always serialize to equal bytes.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dsm_bench::alloc_track::CountingAlloc;
use dsm_bench::compare::speedups;
use dsm_bench::simbench::{measure, point_key};
use dsm_bench::bench_matrix;
use dsm_harness::json::{parse, Json};
use dsm_harness::scale::{scale_sweep, SCALE_PROCS};
use dsm_workloads::App;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SCHEMA: &str = "dsm-bench-sim/v1";
const SAMPLES: usize = 7;
/// Timed runs per arm and point of the 16/64/128-processor scaling curve.
const SCALE_SAMPLES: usize = 7;

fn default_path() -> PathBuf {
    // crates/bench -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_SIM.json")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path_arg = |i: usize| -> PathBuf {
        args.get(i).map(PathBuf::from).unwrap_or_else(default_path)
    };
    match args.first().map(String::as_str) {
        Some("--check") => check(&path_arg(1)),
        Some("--compare") => compare(&path_arg(1)),
        Some("--reset-baseline") => update(&path_arg(1), true),
        None => update(&default_path(), false),
        Some(other) => {
            eprintln!("unknown mode {other}; use --check | --compare | --reset-baseline");
            ExitCode::FAILURE
        }
    }
}

fn read_json(path: &Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    match parse(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("warning: existing {} is unparsable ({e}); ignoring", path.display());
            None
        }
    }
}

/// The beyond-paper scaling curve (`current` only): Ocean — the most
/// interval-dense workload, i.e. the collection-bound regime the sharded
/// core targets — at each of [`SCALE_PROCS`], reference serial arm vs the
/// sharded core with hierarchical DDV reduction.
fn scaling_json(samples: usize) -> Json {
    let points = scale_sweep(App::Ocean, samples);
    Json::obj()
        .field("app", "Ocean")
        .field("samples", samples)
        .field(
            "points",
            Json::Arr(points.iter().map(|p| p.to_json()).collect()),
        )
}

fn update(path: &Path, reset_baseline: bool) -> ExitCode {
    eprintln!("measuring simulator throughput ({SAMPLES} samples per point)...");
    let m = measure(SAMPLES);
    eprintln!(
        "measuring the scaling curve (Ocean at {SCALE_PROCS:?} procs, {SCALE_SAMPLES} samples per arm)..."
    );
    let current = m.to_json("current").field("scaling", scaling_json(SCALE_SAMPLES));
    let baseline = if reset_baseline {
        None
    } else {
        read_json(path).and_then(|old| old.get("baseline").cloned())
    };
    let baseline = baseline.unwrap_or_else(|| {
        eprintln!("no recorded baseline; using this measurement as the baseline");
        m.to_json("baseline")
    });
    let doc = Json::obj()
        .field("schema", SCHEMA)
        .field("scale", "test")
        .field(
            "matrix",
            Json::Arr(
                bench_matrix()
                    .into_iter()
                    .map(|(a, n)| Json::Str(point_key(a, n)))
                    .collect(),
            ),
        )
        .field(
            "speedup_events_per_sec",
            speedups(&baseline, &current, "events_per_sec"),
        )
        .field("baseline", baseline)
        .field("current", current);
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    print_summary(&doc);
    ExitCode::SUCCESS
}

fn print_summary(doc: &Json) {
    if let Some(s) = doc.get("speedup_events_per_sec") {
        println!("events/sec speedup vs baseline: {s}");
    }
    if let Some(a) = doc
        .get("current")
        .and_then(|c| c.get("allocs_per_interval"))
        .and_then(Json::as_f64)
    {
        println!("steady-state allocs per classified interval: {a}");
    }
    if let Some(ms) = doc
        .get("current")
        .and_then(|c| c.get("diagnose"))
        .and_then(|d| d.get("engine_ms"))
        .and_then(Json::as_f64)
    {
        println!("diagnosis engine pass: {ms} ms (16-node straggler fleet)");
    }
    if let Some(points) = doc
        .get("current")
        .and_then(|c| c.get("scaling"))
        .and_then(|s| s.get("points"))
        .and_then(Json::as_arr)
    {
        for p in points {
            if let (Some(n), Some(s)) = (
                p.get("n_procs").and_then(Json::as_f64),
                p.get("speedup").and_then(Json::as_f64),
            ) {
                println!("scaling: {n}P sharded-vs-reference speedup {s}x");
            }
        }
    }
}

fn compare(path: &Path) -> ExitCode {
    let Some(doc) = read_json(path) else {
        eprintln!("cannot read {}", path.display());
        return ExitCode::FAILURE;
    };
    let Some(recorded) = doc.get("current") else {
        eprintln!("{} has no `current` section", path.display());
        return ExitCode::FAILURE;
    };
    eprintln!("measuring current tree for comparison...");
    let m = measure(SAMPLES);
    let now = m.to_json("working-tree");
    println!(
        "speedup (working tree / recorded current): {}",
        speedups(recorded, &now, "events_per_sec")
    );
    println!(
        "steady-state allocs per classified interval: {}",
        m.allocs_per_interval
    );
    // Whole-process allocation counters, served by the telemetry registry
    // (same counters the harness exporters dump as JSONL).
    let mut reg = dsm_telemetry::MetricsRegistry::new();
    dsm_bench::alloc_track::publish(&mut reg);
    println!(
        "process heap traffic: {} allocations, {} bytes",
        reg.counter_value("bench/alloc/allocations").unwrap_or(0),
        reg.counter_value("bench/alloc/bytes").unwrap_or(0)
    );
    ExitCode::SUCCESS
}

/// Validate the checked-in file: schema tag, both sections, and full
/// bench-matrix coverage in each `events_per_sec` map.
fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: {} does not parse: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut errors: Vec<String> = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        errors.push(format!("schema tag must be {SCHEMA:?}"));
    }
    for section in ["baseline", "current"] {
        let Some(sec) = doc.get(section) else {
            errors.push(format!("missing `{section}` section"));
            continue;
        };
        for (app, n) in bench_matrix() {
            let key = point_key(app, n);
            let eps = sec.get("events_per_sec").and_then(|m| m.get(&key));
            match eps.and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                _ => errors.push(format!("`{section}.events_per_sec.{key}` missing or non-positive")),
            }
        }
        for app in App::ALL {
            let key = app.name().to_ascii_lowercase();
            if sec
                .get("pipeline_ms")
                .and_then(|m| m.get(&key))
                .and_then(Json::as_f64)
                .is_none()
            {
                errors.push(format!("`{section}.pipeline_ms.{key}` missing"));
            }
        }
        if sec.get("allocs_per_interval").and_then(Json::as_f64).is_none() {
            errors.push(format!("`{section}.allocs_per_interval` missing"));
        }
    }
    // The checkpoint-roundtrip group is required in `current` (baselines
    // recorded before the sampled-simulation subsystem may predate it).
    match doc.get("current").and_then(|c| c.get("checkpoint_roundtrip")) {
        Some(ck) => {
            for key in ["encode_ms", "decode_restore_ms", "bytes"] {
                match ck.get(key).and_then(Json::as_f64) {
                    Some(v) if v >= 0.0 => {}
                    _ => errors.push(format!(
                        "`current.checkpoint_roundtrip.{key}` missing or negative"
                    )),
                }
            }
        }
        None => errors.push("missing `current.checkpoint_roundtrip` group".into()),
    }
    // The diagnose group is required in `current` only (baselines recorded
    // before the diagnosis subsystem may predate it).
    match doc.get("current").and_then(|c| c.get("diagnose")) {
        Some(dg) => {
            for key in ["engine_ms", "n_streams", "intervals"] {
                match dg.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    _ => errors.push(format!("`current.diagnose.{key}` missing or non-positive")),
                }
            }
        }
        None => errors.push("missing `current.diagnose` group".into()),
    }
    // The scaling curve is required in `current` only (baselines recorded
    // before the sharded core may predate it): every SCALE_PROCS point,
    // positive rates in both arms, bit-identity asserted, CoV-of-CPI logged.
    match doc
        .get("current")
        .and_then(|c| c.get("scaling"))
        .and_then(|s| s.get("points"))
        .and_then(Json::as_arr)
    {
        Some(points) => {
            for n in SCALE_PROCS {
                let Some(p) = points
                    .iter()
                    .find(|p| p.get("n_procs").and_then(Json::as_f64) == Some(n as f64))
                else {
                    errors.push(format!("`current.scaling` missing the {n}-processor point"));
                    continue;
                };
                for key in ["reference_events_per_sec", "sharded_events_per_sec", "speedup"] {
                    match p.get(key).and_then(Json::as_f64) {
                        Some(v) if v > 0.0 => {}
                        _ => errors.push(format!(
                            "`current.scaling` {n}P point: `{key}` missing or non-positive"
                        )),
                    }
                }
                if p.get("bit_identical") != Some(&Json::Bool(true)) {
                    errors.push(format!(
                        "`current.scaling` {n}P point did not assert sharded/serial bit-identity"
                    ));
                }
                if p.get("cov_cpi").and_then(Json::as_f64).is_none() {
                    errors.push(format!("`current.scaling` {n}P point: `cov_cpi` missing"));
                }
            }
        }
        None => errors.push("missing `current.scaling.points` group".into()),
    }
    if doc.get("speedup_events_per_sec").is_none() {
        errors.push("missing `speedup_events_per_sec`".into());
    }
    if errors.is_empty() {
        println!(
            "OK: {} covers the full bench matrix ({} points)",
            path.display(),
            bench_matrix().len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("FAIL: {e}");
        }
        ExitCode::FAILURE
    }
}

// The speedup-map unit tests (matrix growth → "new entry", matrix shrink →
// "removed entry", identical maps → ratios only) live with the shared
// implementation in `dsm_bench::compare`.
