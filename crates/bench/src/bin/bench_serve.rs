//! `bench_serve` — records and checks the phase-server perf baseline.
//!
//! Modes (mirroring `bench_sim`):
//!
//! * (default) measure the current tree and rewrite `BENCH_SERVE.json` at
//!   the repo root, preserving the recorded `baseline` section (first run
//!   uses the fresh measurement as the baseline too);
//! * `--reset-baseline` — overwrite the `baseline` section as well;
//! * `--check [path]` — parse the file and verify schema + full serve
//!   matrix coverage, without measuring anything (CI);
//! * `--compare [path]` — measure the current tree and print speedups
//!   against the file's `current` section (branch-vs-baseline workflow).
//!
//! Each matrix point is a `phased --smoke`-equivalent all-concurrent fleet
//! (64 / 256 / 1024 tenants). Deterministic figures — tick-based latency
//! percentiles, queue high-waters, backpressure counts — are asserted
//! bit-identical across samples; wall-clock classifications/sec is the
//! minimum-time sample, like `bench_sim`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dsm_bench::compare::speedups;
use dsm_bench::servebench::{measure_serve, serve_point_key, serve_section_json, SERVE_TENANTS};
use dsm_harness::json::{parse, Json};

const SCHEMA: &str = "dsm-bench-serve/v1";
const SAMPLES: usize = 7;

fn default_path() -> PathBuf {
    // crates/bench -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_SERVE.json")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path_arg = |i: usize| -> PathBuf {
        args.get(i).map(PathBuf::from).unwrap_or_else(default_path)
    };
    match args.first().map(String::as_str) {
        Some("--check") => check(&path_arg(1)),
        Some("--compare") => compare(&path_arg(1)),
        Some("--reset-baseline") => update(&path_arg(1), true),
        None => update(&default_path(), false),
        Some(other) => {
            eprintln!("unknown mode {other}; use --check | --compare | --reset-baseline");
            ExitCode::FAILURE
        }
    }
}

fn read_json(path: &Path) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    match parse(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("warning: existing {} is unparsable ({e}); ignoring", path.display());
            None
        }
    }
}

fn update(path: &Path, reset_baseline: bool) -> ExitCode {
    eprintln!(
        "measuring phase-server throughput ({SAMPLES} samples per point, fleets of {SERVE_TENANTS:?} tenants)..."
    );
    let points = measure_serve(SAMPLES);
    let current = serve_section_json(&points, "current");
    let baseline = if reset_baseline {
        None
    } else {
        read_json(path).and_then(|old| old.get("baseline").cloned())
    };
    let baseline = baseline.unwrap_or_else(|| {
        eprintln!("no recorded baseline; using this measurement as the baseline");
        serve_section_json(&points, "baseline")
    });
    let doc = Json::obj()
        .field("schema", SCHEMA)
        .field(
            "matrix",
            Json::Arr(
                SERVE_TENANTS
                    .iter()
                    .map(|&t| Json::Str(serve_point_key(t)))
                    .collect(),
            ),
        )
        .field(
            "speedup_classifications_per_sec",
            speedups(&baseline, &current, "classifications_per_sec"),
        )
        .field("baseline", baseline)
        .field("current", current);
    if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    print_summary(&doc);
    ExitCode::SUCCESS
}

fn print_summary(doc: &Json) {
    if let Some(s) = doc.get("speedup_classifications_per_sec") {
        println!("classifications/sec speedup vs baseline: {s}");
    }
    if let Some(points) = doc
        .get("current")
        .and_then(|c| c.get("points"))
        .and_then(Json::as_arr)
    {
        for p in points {
            if let (Some(t), Some(lt)) =
                (p.get("tenants").and_then(Json::as_f64), p.get("latency_ticks"))
            {
                println!(
                    "{t} tenants: latency ticks p50/p99/p999 = {}/{}/{}, queue hw {}",
                    lt.get("p50").and_then(Json::as_f64).unwrap_or(-1.0),
                    lt.get("p99").and_then(Json::as_f64).unwrap_or(-1.0),
                    lt.get("p999").and_then(Json::as_f64).unwrap_or(-1.0),
                    p.get("queue_high_water").and_then(Json::as_f64).unwrap_or(-1.0),
                );
            }
        }
    }
}

fn compare(path: &Path) -> ExitCode {
    let Some(doc) = read_json(path) else {
        eprintln!("cannot read {}", path.display());
        return ExitCode::FAILURE;
    };
    let Some(recorded) = doc.get("current") else {
        eprintln!("{} has no `current` section", path.display());
        return ExitCode::FAILURE;
    };
    eprintln!("measuring current tree for comparison...");
    let points = measure_serve(SAMPLES);
    let now = serve_section_json(&points, "working-tree");
    println!(
        "speedup (working tree / recorded current): {}",
        speedups(recorded, &now, "classifications_per_sec")
    );
    ExitCode::SUCCESS
}

/// Validate the checked-in file: schema tag, both sections, full serve
/// matrix coverage, and per-point latency/queue figures in `current`.
fn check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: {} does not parse: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut errors: Vec<String> = Vec::new();
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        errors.push(format!("schema tag must be {SCHEMA:?}"));
    }
    for section in ["baseline", "current"] {
        let Some(sec) = doc.get(section) else {
            errors.push(format!("missing `{section}` section"));
            continue;
        };
        for tenants in SERVE_TENANTS {
            let key = serve_point_key(tenants);
            let rate = sec.get("classifications_per_sec").and_then(|m| m.get(&key));
            match rate.and_then(Json::as_f64) {
                Some(v) if v > 0.0 => {}
                _ => errors.push(format!(
                    "`{section}.classifications_per_sec.{key}` missing or non-positive"
                )),
            }
        }
    }
    match doc
        .get("current")
        .and_then(|c| c.get("points"))
        .and_then(Json::as_arr)
    {
        Some(points) => {
            for tenants in SERVE_TENANTS {
                let Some(p) = points
                    .iter()
                    .find(|p| p.get("tenants").and_then(Json::as_f64) == Some(tenants as f64))
                else {
                    errors.push(format!("`current.points` missing the {tenants}-tenant point"));
                    continue;
                };
                match p.get("classified").and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    _ => errors.push(format!(
                        "`current.points` {tenants}-tenant point: `classified` missing or non-positive"
                    )),
                }
                for key in ["queue_high_water", "busy_events", "output_stalls"] {
                    if p.get(key).and_then(Json::as_f64).is_none() {
                        errors.push(format!(
                            "`current.points` {tenants}-tenant point: `{key}` missing"
                        ));
                    }
                }
                let lt = p.get("latency_ticks");
                for key in ["p50", "p99", "p999"] {
                    match lt.and_then(|l| l.get(key)).and_then(Json::as_f64) {
                        Some(v) if v >= 0.0 => {}
                        _ => errors.push(format!(
                            "`current.points` {tenants}-tenant point: `latency_ticks.{key}` missing or negative"
                        )),
                    }
                }
            }
        }
        None => errors.push("missing `current.points` group".into()),
    }
    if doc.get("speedup_classifications_per_sec").is_none() {
        errors.push("missing `speedup_classifications_per_sec`".into());
    }
    if errors.is_empty() {
        println!(
            "OK: {} covers the full serve matrix ({} points)",
            path.display(),
            SERVE_TENANTS.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("FAIL: {e}");
        }
        ExitCode::FAILURE
    }
}
