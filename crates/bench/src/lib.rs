//! # dsm-bench — benchmark support
//!
//! Shared helpers for the Criterion benches that regenerate every table and
//! figure of the paper (see `benches/`). The figure benches measure the
//! *pipeline* (simulate → capture → sweep → envelope) at test scale so a
//! full `cargo bench` stays fast, and print the regenerated artefacts once
//! per run; absolute-scale regeneration is the harness binaries' job
//! (`cargo run --release -p dsm-harness --bin fig2`).

pub mod alloc_track;
pub mod compare;
pub mod servebench;
pub mod simbench;

use std::sync::Arc;

use dsm_harness::experiment::ExperimentConfig;
use dsm_harness::trace::{capture_cached, SystemTrace};
use dsm_workloads::App;

/// Capture (once, cached) the standard bench trace for an app/size.
pub fn bench_trace(app: App, n_procs: usize) -> Arc<SystemTrace> {
    capture_cached(ExperimentConfig::test(app, n_procs))
}

/// All (app, size) pairs the figure benches cover.
pub fn bench_matrix() -> Vec<(App, usize)> {
    App::ALL
        .iter()
        .flat_map(|&a| [2usize, 8].into_iter().map(move |p| (a, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_traces_are_cached() {
        let a = bench_trace(App::Lu, 2);
        let b = bench_trace(App::Lu, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.total_intervals() > 0);
    }

    #[test]
    fn matrix_covers_all_apps() {
        assert_eq!(bench_matrix().len(), 8);
    }
}
