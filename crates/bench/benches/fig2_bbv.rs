//! Figure 2 regeneration bench: baseline BBV CoV curves per application
//! and node count. Measures the offline classification sweep over a cached
//! trace (the paper's 200-threshold methodology, scaled to 50 points for
//! bench cadence), and prints the regenerated envelope once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::{bench_matrix, bench_trace};
use dsm_harness::sweep::bbv_curve_with;

fn fig2_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_bbv_sweep");
    group.sample_size(10);
    for (app, procs) in bench_matrix() {
        let trace = bench_trace(app, procs);
        // Print the regenerated data once (the bench's artefact).
        let curve = bbv_curve_with(&trace, 50);
        let env = curve.lower_envelope(25);
        eprintln!(
            "[fig2] {} {}P envelope: {:?}",
            app.name(),
            procs,
            env.iter().map(|(k, v)| (*k, (v * 1000.0).round() / 1000.0)).collect::<Vec<_>>()
        );
        group.bench_with_input(
            BenchmarkId::new(app.name(), procs),
            &trace,
            |b, trace| b.iter(|| bbv_curve_with(trace, 50)),
        );
    }
    group.finish();
}

fn fig2_capture(c: &mut Criterion) {
    // The simulation side of the pipeline (uncached capture).
    let mut group = c.benchmark_group("fig2_capture");
    group.sample_size(10);
    for procs in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("LU", procs), &procs, |b, &p| {
            b.iter(|| {
                dsm_harness::trace::capture(
                    dsm_harness::experiment::ExperimentConfig::test(dsm_workloads::App::Lu, p),
                )
            })
        });
    }
    group.finish();
}


/// Short measurement windows so a full `cargo bench --workspace` stays
/// in minutes while keeping stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig2_sweeps, fig2_capture
}
criterion_main!(benches);
