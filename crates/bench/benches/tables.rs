//! Tables I & II regeneration bench: renders both tables (printed once)
//! and measures the render path.

use criterion::{criterion_group, criterion_main, Criterion};
use dsm_harness::tables::{table1, table2};

fn tables(c: &mut Criterion) {
    eprintln!("{}", table1().render());
    eprintln!("{}", table2().render());
    c.bench_function("table1_render", |b| b.iter(|| table1().render()));
    c.bench_function("table2_render", |b| b.iter(|| table2().render()));
}


/// Short measurement windows so a full `cargo bench --workspace` stays
/// in minutes while keeping stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = tables
}
criterion_main!(benches);
