//! Microbenchmarks of the detector hardware structures: BBV accumulator
//! updates, footprint-table classification, frequency-matrix recording and
//! end-of-interval DDS queries — the per-commit and per-interval costs the
//! paper argues are "modest in size and complexity".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm_phase::bbv::BbvAccumulator;
use dsm_phase::ddv::DdvState;
use dsm_phase::footprint::FootprintTable;

fn bbv_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("bbv_record");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("1024_commits", |b| {
        let mut acc = BbvAccumulator::new(32);
        b.iter(|| {
            for i in 0..1024u32 {
                acc.record(i.wrapping_mul(2654435761), 12);
            }
            acc.reset();
        })
    });
    group.finish();
}

fn footprint_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("footprint_classify");
    for fill in [4usize, 32] {
        group.bench_with_input(BenchmarkId::new("entries", fill), &fill, |b, &fill| {
            let mut table = FootprintTable::new(32);
            // Pre-populate `fill` distinct signatures.
            for i in 0..fill {
                let mut v = vec![0.0; 32];
                v[i % 32] = 1.0;
                table.classify(&v, i as f64, 1e-9, None);
            }
            let probe = {
                let mut v = vec![0.0; 32];
                v[0] = 0.6;
                v[1] = 0.4;
                v
            };
            b.iter(|| table.classify(&probe, 1.0, 0.2, Some(0.2)))
        });
    }
    group.finish();
}

fn ddv_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddv");
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("record_access", n), &n, |b, &n| {
            let mut ddv = DdvState::for_hypercube(n);
            let mut h = 0usize;
            b.iter(|| {
                h = (h + 1) % n;
                ddv.record_access(0, h);
            })
        });
        group.bench_with_input(BenchmarkId::new("end_interval", n), &n, |b, &n| {
            let mut ddv = DdvState::for_hypercube(n);
            for p in 0..n {
                for h in 0..n {
                    ddv.record_access(p, h);
                }
            }
            b.iter(|| ddv.end_interval(0))
        });
    }
    group.finish();
}


/// Short measurement windows so a full `cargo bench --workspace` stays
/// in minutes while keeping stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bbv_record, footprint_classify, ddv_paths
}
criterion_main!(benches);
