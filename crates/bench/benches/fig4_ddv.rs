//! Figure 4 regeneration bench: BBV+DDV grid sweeps per application, with
//! the BBV/DDV envelope comparison printed once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::{bench_matrix, bench_trace};
use dsm_harness::sweep::{bbv_curve_with, bbv_ddv_curve_with};

fn fig4_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_ddv_sweep");
    group.sample_size(10);
    for (app, procs) in bench_matrix() {
        let trace = bench_trace(app, procs);
        let bbv = bbv_curve_with(&trace, 20);
        let ddv = bbv_ddv_curve_with(&trace, 10, 5);
        eprintln!(
            "[fig4] {} {}P: BBV cov@10={:?} BBV+DDV cov@10={:?}",
            app.name(),
            procs,
            bbv.cov_at_phases(10.0).map(|v| (v * 1000.0).round() / 1000.0),
            ddv.cov_at_phases(10.0).map(|v| (v * 1000.0).round() / 1000.0),
        );
        group.bench_with_input(
            BenchmarkId::new(app.name(), procs),
            &trace,
            |b, trace| b.iter(|| bbv_ddv_curve_with(trace, 10, 5)),
        );
    }
    group.finish();
}


/// Short measurement windows so a full `cargo bench --workspace` stays
/// in minutes while keeping stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = fig4_sweeps
}
criterion_main!(benches);
