//! Simulator throughput: committed instructions per second of wall time
//! for each workload, plus cache/branch-predictor microbenches. This is
//! the substrate's speed budget for the figure regenerations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsm_sim::branch::Gshare;
use dsm_sim::cache::Cache;
use dsm_sim::config::SystemConfig;
use dsm_sim::observer::NullObserver;
use dsm_sim::system::System;
use dsm_workloads::{make_stream, App, Scale};

fn app_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_app");
    group.sample_size(10);
    for app in App::ALL {
        // Pre-measure instruction volume for throughput units.
        let insns = {
            let cfg = SystemConfig::scaled(4, 64_000);
            let stream = make_stream(app, 4, Scale::Test);
            let (stats, _) = System::new(cfg, stream, NullObserver).run();
            stats.total_insns()
        };
        group.throughput(Throughput::Elements(insns));
        group.bench_with_input(BenchmarkId::new("4p_test", app.name()), &app, |b, &app| {
            b.iter(|| {
                let cfg = SystemConfig::scaled(4, 64_000);
                let stream = make_stream(app, 4, Scale::Test);
                System::new(cfg, stream, NullObserver).run()
            })
        });
    }
    group.finish();
}

fn cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_hit", |b| {
        let mut l1 = Cache::new(SystemConfig::paper(2).l1);
        l1.access(0x40, false);
        b.iter(|| l1.access(0x40, false))
    });
    group.bench_function("l2_mixed", |b| {
        let mut l2 = Cache::new(SystemConfig::paper(2).l2);
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x5f33) & 0x3f_ffff;
            l2.access(a, a & 4 == 0)
        })
    });
    group.finish();
}

fn gshare_predict(c: &mut Criterion) {
    c.bench_function("gshare_predict_update", |b| {
        let mut g = Gshare::new(2048);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            g.predict_and_update(i & 0xff, !i.is_multiple_of(3))
        })
    });
}


/// Short measurement windows so a full `cargo bench --workspace` stays
/// in minutes while keeping stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = app_simulation, cache_access, gshare_predict
}
criterion_main!(benches);
