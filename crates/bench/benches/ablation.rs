//! DDS ablation bench (DESIGN.md A1-A3): measures the ablated sweeps and
//! prints the full/no-contention/no-distance/frequency-only comparison
//! once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm_bench::bench_trace;
use dsm_harness::sweep::{ablation_curve, DdsAblation};
use dsm_workloads::App;

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("dds_ablation");
    group.sample_size(10);
    let trace = bench_trace(App::Lu, 8);
    for (name, which) in [
        ("full", DdsAblation::Full),
        ("no_contention", DdsAblation::NoContention),
        ("no_distance", DdsAblation::NoDistance),
        ("frequency_only", DdsAblation::FrequencyOnly),
    ] {
        let curve = ablation_curve(&trace, which);
        eprintln!(
            "[ablation] LU 8P {name}: cov@10 = {:?}",
            curve.cov_at_phases(10.0).map(|v| (v * 1000.0).round() / 1000.0)
        );
        group.bench_with_input(BenchmarkId::new("LU_8p", name), &which, |b, &w| {
            b.iter(|| ablation_curve(&trace, w))
        });
    }
    group.finish();
}


/// Short measurement windows so a full `cargo bench --workspace` stays
/// in minutes while keeping stable medians.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = ablations
}
criterion_main!(benches);
