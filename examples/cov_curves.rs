//! Generate CoV curves (the paper's evaluation tool) for any application
//! and system size, as an ASCII chart plus a CSV on stdout.
//!
//! Run with: `cargo run --release --example cov_curves -- [app] [procs]`
//! e.g. `cargo run --release --example cov_curves -- fmm 32`

use dsm_phase_detection::analysis::plot::AsciiChart;
use dsm_phase_detection::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app: App = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(App::Fmm);
    let n_procs: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(32);

    let trace = capture(ExperimentConfig::scaled(app, n_procs));
    println!(
        "captured {} ({} intervals across {n_procs} procs)",
        trace.config.label(),
        trace.total_intervals()
    );

    let bbv = bbv_curve(&trace);
    let ddv = bbv_ddv_curve(&trace);

    let mut chart = AsciiChart::new(
        format!("{} CoV Curves ({}P)", app.name(), n_procs),
        64,
        16,
    )
    .log_y()
    .labels("# of Phases", "Identifier CoV of CPI");
    let env = |c: &CovCurve| {
        c.lower_envelope(25)
            .into_iter()
            .map(|(k, v)| (k as f64, v.max(1e-4)))
            .collect::<Vec<_>>()
    };
    chart.series("BBV", 'o', env(&bbv));
    chart.series("BBV+DDV", '+', env(&ddv));
    println!("{}", chart.render());

    println!("detector,phases,cov");
    for (name, curve) in [("BBV", &bbv), ("BBV+DDV", &ddv)] {
        for (k, cov) in curve.lower_envelope(25) {
            println!("{name},{k},{cov:.6}");
        }
    }
}
