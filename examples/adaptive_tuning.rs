//! Close the loop of the paper's §II: drive the trial-and-error
//! reconfiguration protocol with each detector's phase stream and compare
//! end-to-end tuning cost.
//!
//! A better phase detector pays off twice: fewer phases mean fewer
//! exploratory (tuning) intervals, and more CPI-homogeneous phases mean the
//! locked configuration actually fits the intervals it is applied to.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use dsm_phase_detection::harness::adaptive::{run_tuning, run_tuning_predicted, TuningPolicy};
use dsm_phase_detection::phase::predictor::RlePredictor;
use dsm_phase_detection::prelude::*;

fn main() {
    let n_procs = 32;
    let policy = TuningPolicy { n_configs: 4, trials_per_config: 1 };

    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>12} {:>12} {:>14}",
        "app", "detector", "phases", "tuning-frac", "vs-oracle", "vs-untuned", "RLE-predicted"
    );
    for app in App::ALL {
        let trace = capture_cached(ExperimentConfig::scaled(app, n_procs));
        for (name, mode, thr) in [
            ("BBV", DetectorMode::Bbv, Thresholds::bbv_only(0.30)),
            ("BBV+DDV", DetectorMode::BbvDdv, Thresholds { bbv: 0.30, dds: 0.25 }),
        ] {
            // Build the tuning input from every processor's classified
            // stream (phase ids are per-processor tables, as in hardware).
            let mut total_phases = 0usize;
            let mut outcome_sum = (0usize, 0usize, 0.0f64, 0.0f64, 0.0f64);
            let mut predicted_cycles = 0.0f64;
            for records in &trace.records {
                let ids = TraceClassifier::classify_proc(records, mode, thr, 32);
                let pairs: Vec<(u32, f64)> =
                    ids.iter().zip(records).map(|(&i, r)| (i, r.cpi())).collect();
                total_phases += dsm_phase_detection::analysis::cov::phase_count(&pairs);
                let stream: Vec<(u32, f64, u64)> = ids
                    .iter()
                    .zip(records)
                    .map(|(&i, r)| (i, r.cpi(), r.insns))
                    .collect();
                let o = run_tuning(&stream, policy);
                outcome_sum.0 += o.total_intervals;
                outcome_sum.1 += o.tuning_intervals;
                outcome_sum.2 += o.tuned_cycles;
                outcome_sum.3 += o.oracle_cycles;
                outcome_sum.4 += o.untuned_cycles;
                // Full SII pipeline: the configuration applied each interval
                // is the one locked for the RLE-predicted phase.
                let mut rle = RlePredictor::new(64);
                predicted_cycles +=
                    run_tuning_predicted(&stream, policy, &mut rle).tuned_cycles;
            }
            let tuning_frac = outcome_sum.1 as f64 / outcome_sum.0.max(1) as f64;
            let vs_oracle = outcome_sum.2 / outcome_sum.3.max(1e-9);
            let vs_untuned = outcome_sum.4 / outcome_sum.2.max(1e-9);
            println!(
                "{:<8} {:>10} {:>14.1} {:>13.1}% {:>12.3} {:>12.3} {:>14.3}",
                app.name(),
                name,
                total_phases as f64 / n_procs as f64,
                tuning_frac * 100.0,
                vs_oracle,
                vs_untuned,
                predicted_cycles / outcome_sum.3.max(1e-9)
            );
        }
    }
    println!("\nvs-oracle: 1.0 = the locked configs are as good as an oracle;");
    println!("vs-untuned: >1.0 = phase-guided tuning beats a fixed default config.");
}
