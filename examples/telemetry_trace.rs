//! Telemetry walkthrough: capture a small instrumented LU run and export
//! the observability artifacts — a Chrome trace you can open in
//! `chrome://tracing` or Perfetto, the JSONL metrics dump, and a summary
//! table.
//!
//! Run with: `cargo run --release --features telemetry --example telemetry_trace`
//!
//! Without `--features telemetry` the probes compile to no-ops; the
//! example still runs and says so (artifacts come out empty-but-valid).

use dsm_phase_detection::harness::telemetry::{capture_with_telemetry, export_run};
use dsm_phase_detection::harness::ExperimentConfig;
use dsm_phase_detection::workloads::App;

fn main() {
    let config = ExperimentConfig::test(App::Lu, 2);
    println!("capturing {} with telemetry...", config.label());
    let cap = capture_with_telemetry(config);

    if !cap.snapshot.enabled {
        println!("note: built without --features telemetry; artifacts will be empty");
    }
    println!(
        "recorded {} spans on {} tracks ({} dropped), {} metrics",
        cap.snapshot.recorded_spans(),
        cap.snapshot.tracks.len(),
        cap.snapshot.dropped_spans(),
        cap.snapshot.metrics.len()
    );

    let dir = std::path::Path::new("results/telemetry");
    let paths = export_run(dir, &config.label(), &cap.snapshot).expect("write artifacts");
    for p in &paths {
        println!("wrote {}", p.display());
    }
    println!(
        "\nopen {} in chrome://tracing or https://ui.perfetto.dev to see\n\
         per-node coherence transactions and sampling intervals on the cycle timeline",
        paths[0].display()
    );
}
