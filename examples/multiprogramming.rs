//! Multiprogramming (paper §III-B): carry phase-detector state across
//! context switches, or clear it and pay more tuning.
//!
//! Two "threads" (different synthetic programs) time-share one processor's
//! detector. With save/restore, each thread resumes into its own footprint
//! table and keeps its phase identities; with clearing, every switch
//! re-learns phases from scratch (more new-phase events = more tuning).
//!
//! Run with: `cargo run --release --example multiprogramming`

use dsm_phase_detection::phase::context::DetectorContext;
use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::observer::{IntervalStats, SimObserver};

/// Drive one interval of a synthetic "program" through a detector.
fn run_interval(det: &mut OnlineDetector, codes: &[u32], idx: u64) {
    for &c in codes {
        for _ in 0..8 {
            det.on_block_commit(0, c, 40);
        }
    }
    det.on_interval(0, IntervalStats { index: idx, insns: 2000, cycles: 3000 });
}

fn main() {
    let thread_a: Vec<u32> = vec![0x11, 0x12, 0x13];
    let thread_b: Vec<u32> = vec![0x91, 0x92];

    for restore in [true, false] {
        let mut det = OnlineDetector::new(
            1,
            vec![1.0],
            DetectorMode::Bbv,
            Thresholds::bbv_only(0.3),
            DetectorGeometry::default(),
        );
        let mut ctx_a: Option<DetectorContext> = None;
        let mut ctx_b: Option<DetectorContext> = None;
        let mut idx = 0u64;

        // 8 scheduling quanta of 6 intervals each, alternating threads.
        for quantum in 0..8 {
            let (codes, ctx_in, ctx_out): (&[u32], _, _) = if quantum % 2 == 0 {
                (&thread_a, &mut ctx_a, 'A')
            } else {
                (&thread_b, &mut ctx_b, 'B')
            };
            let _ = ctx_out;
            if let Some(ctx) = ctx_in.as_ref() {
                if restore {
                    ctx.restore(&mut det, 0);
                } else {
                    ctx.cleared().restore(&mut det, 0);
                }
            }
            for _ in 0..6 {
                run_interval(&mut det, codes, idx);
                idx += 1;
            }
            *ctx_in = Some(DetectorContext::save(&mut det, 0));
        }

        let new_phases = det.classified[0].iter().filter(|c| c.is_new_phase).count();
        let total = det.classified[0].len();
        println!(
            "{} state across switches: {total} intervals, {new_phases} new-phase events (each costs a re-tune)",
            if restore { "SAVE/RESTORE" } else { "CLEAR       " }
        );
    }
    println!("\nWith save/restore each thread learns its phases once; clearing re-learns on every switch.");
}
