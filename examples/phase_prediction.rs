//! Phase prediction (the paper's future-work direction): feed each
//! detector's classified phase stream to last-phase and RLE-Markov
//! predictors and compare accuracy.
//!
//! Run with: `cargo run --release --example phase_prediction`

use dsm_phase_detection::phase::predictor::{
    accuracy_over, LastPhasePredictor, RlePredictor,
};
use dsm_phase_detection::prelude::*;

fn main() {
    let n_procs = 8;
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>10}",
        "app", "detector", "last-phase", "RLE-Markov", "intervals"
    );
    for app in App::ALL {
        let trace = capture_cached(ExperimentConfig::scaled(app, n_procs));
        for (name, mode, thr) in [
            ("BBV", DetectorMode::Bbv, Thresholds::bbv_only(0.30)),
            ("BBV+DDV", DetectorMode::BbvDdv, Thresholds { bbv: 0.30, dds: 0.25 }),
        ] {
            let mut last_acc = 0.0;
            let mut rle_acc = 0.0;
            let mut n = 0usize;
            for records in &trace.records {
                let ids = TraceClassifier::classify_proc(records, mode, thr, 32);
                let mut last = LastPhasePredictor::new();
                last_acc += accuracy_over(&mut last, &ids);
                let mut rle = RlePredictor::new(64);
                rle_acc += accuracy_over(&mut rle, &ids);
                n += ids.len();
            }
            let procs = trace.records.len() as f64;
            println!(
                "{:<8} {:>9} {:>11.1}% {:>11.1}% {:>10}",
                app.name(),
                name,
                last_acc / procs * 100.0,
                rle_acc / procs * 100.0,
                n
            );
        }
    }
}
