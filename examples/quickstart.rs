//! Quick start: simulate LU on a 4-node DSM machine with the paper's
//! BBV+DDV detector attached, and print what it found.
//!
//! Run with: `cargo run --release --example quickstart`

use dsm_phase_detection::prelude::*;

fn main() {
    let n_procs = 4;

    // The machine of the paper's Table I (scaled L2 for the reduced input),
    // sampling every 128k/4 committed non-sync instructions per processor.
    let config = ExperimentConfig::scaled(App::Lu, n_procs);
    let sys_cfg = config.system_config();

    // The paper's hardware: a 32-entry BBV accumulator + 32-vector
    // footprint table per node, plus the DDV with the hypercube distance
    // matrix, classifying online with both thresholds.
    let net = dsm_phase_detection::sim::network::Network::new(sys_cfg.network, n_procs);
    let detector = OnlineDetector::new(
        n_procs,
        net.distance_matrix(),
        DetectorMode::BbvDdv,
        Thresholds { bbv: 0.30, dds: 0.25 },
        DetectorGeometry::default(),
    );

    let stream = make_stream(App::Lu, n_procs, Scale::Scaled);
    let system = System::new(sys_cfg, stream, detector);
    let (stats, detector) = system.run();

    println!("simulated {} instructions over {} cycles (system IPC {:.2})",
        stats.total_insns(), stats.finish_cycle, stats.system_ipc());

    for proc in 0..n_procs {
        let classified = &detector.classified[proc];
        let pairs: Vec<(u32, f64)> = classified.iter().map(|c| (c.phase_id, c.cpi)).collect();
        let phases = dsm_phase_detection::analysis::cov::phase_count(&pairs);
        let cov = identifier_cov(&pairs);
        println!(
            "proc {proc}: {} intervals, {} phases, identifier CoV of CPI = {:.1} %",
            classified.len(),
            phases,
            cov * 100.0
        );
    }

    // Show one processor's phase timeline.
    let timeline: Vec<u32> = detector.classified[0].iter().map(|c| c.phase_id).collect();
    println!("\nproc 0 phase timeline: {timeline:?}");
}
