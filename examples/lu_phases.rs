//! LU phase timelines, BBV vs BBV+DDV side by side, on an 8-node machine.
//!
//! The interior (dgemm) code of LU is identical for the whole run, but as
//! the factorization proceeds the active window shrinks and block ownership
//! rotates — the same code touches different remote homes at different
//! contention levels. The BBV lumps it into one phase; the DDV splits it
//! into CPI-homogeneous sub-phases. This example makes that visible.
//!
//! Run with: `cargo run --release --example lu_phases`

use dsm_phase_detection::prelude::*;

fn main() {
    let n_procs = 8;
    let config = ExperimentConfig::scaled(App::Lu, n_procs);
    let trace = capture(config);

    let thresholds = Thresholds { bbv: 0.30, dds: 0.25 };
    let proc = 1;
    let records = &trace.records[proc];

    let bbv_ids = TraceClassifier::classify_proc(
        records,
        DetectorMode::Bbv,
        thresholds,
        32,
    );
    let ddv_ids = TraceClassifier::classify_proc(
        records,
        DetectorMode::BbvDdv,
        thresholds,
        32,
    );

    println!("LU on {n_procs} processors, proc {proc}: {} intervals", records.len());
    println!("{:<10} {:>8} {:>12} {:>10} {:>10}", "interval", "CPI", "DDS", "BBV-phase", "DDV-phase");
    for (i, r) in records.iter().enumerate() {
        println!(
            "{:<10} {:>8.2} {:>12.3e} {:>10} {:>10}",
            i,
            r.cpi(),
            r.dds,
            bbv_ids[i],
            ddv_ids[i]
        );
    }

    let pairs = |ids: &[u32]| -> Vec<(u32, f64)> {
        ids.iter().zip(records).map(|(&id, r)| (id, r.cpi())).collect()
    };
    let b = pairs(&bbv_ids);
    let d = pairs(&ddv_ids);
    println!("\nBBV timeline:");
    print!(
        "{}",
        dsm_phase_detection::analysis::plot::phase_timeline(&bbv_ids, 6)
    );
    println!("BBV+DDV timeline:");
    print!(
        "{}",
        dsm_phase_detection::analysis::plot::phase_timeline(&ddv_ids, 6)
    );
    println!(
        "\nBBV    : {:>3} phases, identifier CoV {:.1} %",
        dsm_phase_detection::analysis::cov::phase_count(&b),
        identifier_cov(&b) * 100.0
    );
    println!(
        "BBV+DDV: {:>3} phases, identifier CoV {:.1} %",
        dsm_phase_detection::analysis::cov::phase_count(&d),
        identifier_cov(&d) * 100.0
    );
}
