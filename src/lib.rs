//! # dsm-phase-detection
//!
//! A full reproduction of İpek, Martínez, de Supinski, McKee & Schulz,
//! *Dynamic Program Phase Detection in Distributed Shared-Memory
//! Multiprocessors* (IPDPS NSF-NGS workshop, 2006), as a Rust workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] (`dsm-sim`) | DSM multiprocessor simulator: cycle-accounting cores, L1/L2 tag arrays, gshare, directory coherence, hypercube network, memory controllers |
//! | [`workloads`] (`dsm-workloads`) | Structural models of SPLASH-2 LU/FMM and SPEC-OMP Art/Equake, plus synthetic phased workloads |
//! | [`phase`] (`dsm-phase`) | **The paper's contribution**: BBV accumulator + footprint table, the DDV (frequency matrix, contention vector, DDS), online/offline detectors, predictors, related-work baselines |
//! | [`analysis`] (`dsm-analysis`) | CoV of CPI, identifier CoV, CoV curves, tables, ASCII plots |
//! | [`harness`] (`dsm-harness`) | Experiment orchestration: Figures 2 & 4, Tables I & II, the §III-B overhead model, DDS ablations, the §II adaptive-tuning loop |
//!
//! ## Quick start
//!
//! ```
//! use dsm_phase_detection::prelude::*;
//!
//! // Capture one simulated run of LU on a 4-node DSM machine...
//! let config = ExperimentConfig::test(App::Lu, 4);
//! let trace = capture(config);
//! assert!(trace.total_intervals() > 0);
//!
//! // ...and sweep detector thresholds into CoV curves.
//! let bbv = bbv_curve(&trace);
//! let ddv = bbv_ddv_curve(&trace);
//! assert!(!bbv.is_empty() && !ddv.is_empty());
//! ```
//!
//! See `examples/` for end-to-end programs and DESIGN.md / EXPERIMENTS.md
//! for the experiment inventory and measured results.

pub use dsm_analysis as analysis;
pub use dsm_harness as harness;
pub use dsm_phase as phase;
pub use dsm_sim as sim;
pub use dsm_telemetry as telemetry;
pub use dsm_workloads as workloads;

/// Most-used items in one import.
pub mod prelude {
    pub use dsm_analysis::cov::identifier_cov;
    pub use dsm_analysis::curve::CovCurve;
    pub use dsm_harness::experiment::ExperimentConfig;
    pub use dsm_harness::sweep::{bbv_curve, bbv_ddv_curve};
    pub use dsm_harness::trace::{capture, capture_cached, SystemTrace};
    pub use dsm_phase::detector::{
        DetectorGeometry, DetectorMode, OnlineDetector, Thresholds, TraceClassifier,
        TraceCollector,
    };
    pub use dsm_phase::{BbvAccumulator, DdvState, FootprintTable};
    pub use dsm_sim::config::SystemConfig;
    pub use dsm_sim::system::System;
    pub use dsm_workloads::{make_stream, App, Scale};
}
