//! Offline stand-in for the parts of `rand` 0.8 the workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range,
//! gen_bool}` over primitive ranges.
//!
//! The generator is SplitMix64 — statistically fine for workload jitter and
//! tests, deterministic for a given seed, and dependency-free. It does NOT
//! produce the same streams as the real `rand` crate; everything in this
//! workspace that relies on the stream only relies on per-seed determinism.
//! See `vendor/README.md`.

use std::ops::Range;

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, for `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((self.start as i128) + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Types producible by `Rng::gen()` (the `Standard` distribution subset).
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed replacement for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = r.gen_range(3usize..4);
            assert_eq!(s, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
