//! Offline stand-in for the subset of `criterion` 0.5 the workspace's
//! benches use. It times each closure over `sample_size` samples and prints
//! a `name ... median ns/iter` line — no statistics, plotting, or baseline
//! comparison. `cargo bench -- --test` runs each closure once without the
//! timing loop, like real criterion's test mode (CI smoke). See
//! `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measured-throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median wall time per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = times[times.len() / 2];
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// `cargo bench -- --test` quick mode (as in real criterion): run every
    /// bench closure once to prove it works, skip the timing loop.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Parsed here rather than in `configure_from_args` so the flag works
        // for every bench target, including ones built with the plain
        // `criterion_group!(name, targets...)` form.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { sample_size: 10, test_mode }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(id.to_string(), self.sample_size, self.test_mode, &mut f);
        self
    }
}

/// Execute one bench closure and report it, honouring `--test` quick mode.
fn run_bench<F: FnMut(&mut Bencher)>(name: String, samples: usize, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        samples: if test_mode { 1 } else { samples },
        ns_per_iter: 0.0,
    };
    f(&mut b);
    if test_mode {
        println!("test bench {name} ... ok");
    } else {
        println!("bench {name:<50} {:>14.0} ns/iter", b.ns_per_iter);
    }
}

/// A named group of related measurements.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(format!("{}/{}", self.name, id), self.sample_size, self.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            format!("{}/{}", self.name, id),
            self.sample_size,
            self.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.bench_function("busy", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }
}
