//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace uses serde derives purely as markers (no serde_json or
//! other serializer backend exists in-tree; artefacts are written through
//! `dsm-harness`'s own JSON/CSV writers), so the derives can expand to
//! nothing. See `vendor/README.md` for why the real crate is not used.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
