//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro (with `#![proptest_config(..)]`
//! headers), `Strategy` with `prop_map`, range and `any::<T>()` strategies,
//! tuple composition, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, `Just`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed derived from the test's module path and name (so runs
//! are reproducible and CI-stable), and failing cases are *not* shrunk —
//! the failing assertion panics directly with the generated inputs left to
//! the assertion message. See `vendor/README.md`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `.prop_filter` adapter (rejection sampling, bounded retries).
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = ((self.end as i128) - (self.start as i128)) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + r as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // `impl Strategy` behind a reference, for strategy-taking helpers.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, wide dynamic range.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let mag = (unit * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Acceptable vector-length specifiers: exact (`8`) or range (`1..50`).
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy for `Vec<T>` with a swept length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>` (3:1 Some:None, like proptest's default
    /// weighting order of magnitude).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select from empty set");
            self.0[(rng.next_u64() as usize) % self.0.len()].clone()
        }
    }

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        Select(values)
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (module path +
        /// name), so each test gets an independent but reproducible stream.
        pub fn deterministic(test_id: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration (`cases` only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The test-defining macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
    )*};
}

/// Assertion macros. Unlike the real crate these panic immediately (no
/// shrinking), which is what `assert!` family does anyway.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            x in 1u32..100,
            v in prop::collection::vec((0usize..4, any::<bool>()), 1..20),
            o in prop::option::of(0.0f64..1.0),
            s in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _) in &v { prop_assert!(*n < 4); }
            if let Some(f) = o { prop_assert!((0.0..1.0).contains(&f)); }
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn map_and_exact_len(
            v in prop::collection::vec(0.0f64..1.0, 8),
            y in (0u8..3, 0usize..10).prop_map(|(a, b)| a as usize + b),
        ) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(y < 13);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
