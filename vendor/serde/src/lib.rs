//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no crates.io access, and the
//! tree uses serde only for `#[derive(Serialize, Deserialize)]` markers —
//! no serializer backend is ever linked. This crate provides the two trait
//! names plus no-op derive macros so the original sources compile
//! unchanged. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name. The no-op derive does
/// not implement it; nothing in the workspace requires the bound.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
