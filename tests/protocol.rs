//! System-level checks of the paper's DDV protocol (§III-B) on real
//! simulated runs: counter conservation, contention-vector dominance, and
//! the interval-scaling rule — plus the scheduler's deadlock diagnostic.

use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::{Event, InstructionStream, NullObserver};

#[test]
fn fvec_conserves_committed_accesses() {
    for app in [App::Lu, App::Art] {
        let trace = capture(ExperimentConfig::test(app, 4));
        for (proc, records) in trace.records.iter().enumerate() {
            let counted: u64 = records.iter().map(|r| r.fvec.iter().sum::<u64>()).sum();
            let committed = trace.stats.procs[proc].mem_refs;
            // Every access in a closed interval is counted exactly once;
            // only the tail after the last interval boundary is uncounted.
            assert!(
                counted <= committed,
                "{} proc {proc}: counted {counted} > committed {committed}",
                app.name()
            );
            let tail_bound = committed / records.len().max(1) as u64 * 3;
            assert!(
                committed - counted <= tail_bound.max(2000),
                "{} proc {proc}: too many accesses missing from F ({counted} of {committed})",
                app.name()
            );
        }
    }
}

#[test]
fn contention_vector_dominates_own_frequency_vector() {
    // C[j] sums every node's accesses to home j over the requester's
    // window, so C >= F componentwise in every interval.
    let trace = capture(ExperimentConfig::test(App::Fmm, 8));
    for records in &trace.records {
        for r in records {
            for (c, f) in r.cvec.iter().zip(&r.fvec) {
                assert!(c >= f, "C must dominate F: C={:?} F={:?}", r.cvec, r.fvec);
            }
        }
    }
}

#[test]
fn dds_matches_recorded_features() {
    // The recorded DDS equals the formula applied to the recorded F, D, C.
    let trace = capture(ExperimentConfig::test(App::Equake, 4));
    let ddv = DdvState::for_hypercube(4);
    for (proc, records) in trace.records.iter().enumerate() {
        for r in records {
            let expect = DdvState::dds_of(&r.fvec, ddv.dist_row(proc), &r.cvec);
            assert!(
                (expect - r.dds).abs() <= expect.abs() * 1e-12,
                "DDS mismatch: {} vs {}",
                expect,
                r.dds
            );
        }
    }
}

#[test]
fn interval_length_follows_paper_scaling() {
    // "The interval size in each processor is [base] divided by the number
    // of processors" — so interval counts stay comparable as n scales.
    {
        let app = App::Lu;
        let t2 = capture(ExperimentConfig::test(app, 2));
        let t8 = capture(ExperimentConfig::test(app, 8));
        let len2 = t2.records[0][0].insns as f64;
        let len8 = t8.records[0][0].insns as f64;
        let ratio = len2 / len8;
        assert!(
            (3.0..6.0).contains(&ratio),
            "interval length must shrink ~4x from 2P to 8P, got {ratio}"
        );
    }
}

/// A malformed workload: processor 0 arrives at a barrier no other
/// processor ever reaches, then everyone else ends.
struct UnmatchedBarrier {
    emitted: Vec<usize>,
}

impl InstructionStream for UnmatchedBarrier {
    fn n_procs(&self) -> usize {
        self.emitted.len()
    }

    fn next(&mut self, proc: usize) -> Event {
        let step = self.emitted[proc];
        self.emitted[proc] += 1;
        match (proc, step) {
            (_, 0) => Event::Block { bb: 1, insns: 10, taken: false },
            (0, 1) => Event::Barrier { id: 7 },
            _ => Event::End,
        }
    }
}

#[test]
fn deadlock_diagnostic_fires_instead_of_hanging() {
    // Regression for the scheduler's #[cold] no-runnable-processor path: a
    // workload with an unmatched barrier must abort with a diagnostic
    // naming the blocked processors, not spin or hang forever.
    let run = |batched: bool| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cfg = dsm_phase_detection::sim::SystemConfig::paper(2);
            let stream = UnmatchedBarrier { emitted: vec![0; 2] };
            let system = System::new(cfg, stream, NullObserver);
            if batched {
                system.run()
            } else {
                system.run_unbatched()
            }
        }))
    };
    for batched in [true, false] {
        let err = run(batched).expect_err("unmatched barrier must not complete");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("deadlock") && msg.contains("[0]"),
            "batched={batched}: diagnostic must name the deadlock and the \
             blocked processor, got: {msg}"
        );
    }
}

#[test]
fn intervals_have_positive_cpi_and_expected_length() {
    let cfg = ExperimentConfig::test(App::Art, 4);
    let expected = cfg.system_config().interval_len();
    let trace = capture(cfg);
    for records in &trace.records {
        for r in records {
            assert!(r.insns >= expected, "interval shorter than configured");
            assert!(r.insns < expected * 3, "interval absurdly long: {}", r.insns);
            assert!(r.cpi() > 0.05 && r.cpi() < 1000.0, "CPI out of range: {}", r.cpi());
            assert!((r.bbv.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
