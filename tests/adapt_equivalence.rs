//! Differential guarantees of the adaptation subsystem (`dsm-adapt`):
//!
//! 1. **No-op transparency** — an [`AdaptSession`] with the no-op actuator
//!    is bit-identical to a plain capture: same machine statistics, same
//!    observer stream, zero reconfiguration counters. Classification and
//!    the tuning protocol run, but the machine never notices.
//! 2. **Abstract/concrete agreement** — the §II protocol implemented twice
//!    (the abstract cost-surface loop in `dsm_harness::adaptive` and the
//!    live machine loop in `dsm_adapt`) produces *identical decision-key
//!    sequences* on the same classified stream, degraded intervals
//!    included.
//! 3. **Conservation under faults** — with real actuators reconfiguring
//!    the machine mid-run under a lossy fault plan, every workload still
//!    completes and the coherence conservation invariant holds.
//! 4. **Mid-tuning resume** — a `DSMCKPT5` checkpoint taken inside the
//!    exploration of the first phase round-trips through bytes and resumes
//!    to a bit-exact final state.

use dsm_adapt::{
    AdaptConfig, AdaptSession, Decision, DvfsActuator, HeteroActuator, MigrationActuator,
    NoopActuator,
};
use dsm_phase_detection::harness::adaptive::{run_tuning_stream, TuningInterval, TuningPolicy};
use dsm_phase_detection::harness::trace::capture_with_faults;
use dsm_phase_detection::phase::detector::AvailabilityModel;
use dsm_phase_detection::phase::detector::DetectorGeometry as Geometry;
use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::config::{DistributionPolicy, FaultPlan};
use dsm_phase_detection::sim::event::{ChunkedStream, InstructionStream};
use dsm_phase_detection::sim::network::Network;
use dsm_phase_detection::workloads::Workload;
use dsm_simpoint::{Checkpoint, CheckpointMeta};

type AppSystem = System<ChunkedStream<Box<dyn Workload>>, TraceCollector>;

/// Same machine construction as a plain capture (`harness::trace`).
fn build_system(config: ExperimentConfig, dist: Option<DistributionPolicy>) -> AppSystem {
    let mut sys_cfg = config.system_config();
    if let Some(d) = dist {
        sys_cfg.distribution = d;
    }
    build_system_cfg(config, sys_cfg)
}

fn build_system_cfg(config: ExperimentConfig, sys_cfg: SystemConfig) -> AppSystem {
    let stream = make_stream(config.app, config.n_procs, config.scale);
    let dmat = Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = TraceCollector::new(config.n_procs, dmat, Geometry::default());
    System::new(sys_cfg, stream, collector)
}

#[test]
fn noop_actuator_is_bit_identical_to_plain_capture() {
    for app in App::EXTENDED {
        for n in [2usize, 4] {
            let cfg = ExperimentConfig::test(app, n);
            let plain = capture(cfg);
            let out = AdaptSession::new(
                build_system(cfg, None),
                Box::new(NoopActuator),
                AdaptConfig::default(),
            )
            .run();
            assert_eq!(
                out.stats,
                plain.stats,
                "{} x{n}: no-op adaptation perturbed machine statistics",
                app.name()
            );
            assert_eq!(
                out.records,
                plain.records,
                "{} x{n}: no-op adaptation perturbed the observer stream",
                app.name()
            );
            assert!(
                out.stats.reconfig.is_inert(),
                "{} x{n}: no-op arm ticked a reconfiguration counter",
                app.name()
            );
            // The protocol really ran on top: it saw intervals and locked.
            assert!(!out.stream.is_empty() && out.retunes >= 1);
        }
    }
}

/// The concrete session's classified stream, replayed through the abstract
/// protocol, must yield the same score-independent decision-key sequence
/// ([`Decision::key`]): same trial positions, same lock positions, same
/// phases — on every workload and with degraded intervals in the stream.
#[test]
fn abstract_and_concrete_protocols_agree_on_decision_keys() {
    let availability = Some(AvailabilityModel { seed: 11, miss_ppm: 150_000, max_staleness: 0 });
    for (app, avail) in [(App::Lu, None), (App::Fmm, availability), (App::Equake, availability)] {
        let cfg = ExperimentConfig::test(app, 4);
        let adapt_cfg = AdaptConfig { availability: avail, ..AdaptConfig::default() };
        let out = AdaptSession::new(
            build_system(cfg, Some(DistributionPolicy::FirstTouch)),
            Box::new(MigrationActuator),
            adapt_cfg,
        )
        .run();

        // Replay the exact classified stream through the abstract loop.
        let stream: Vec<TuningInterval> = out
            .stream
            .iter()
            .map(|o| TuningInterval {
                index: o.index,
                phase: o.phase,
                cpi: o.cpi,
                insns: 1,
                degraded: o.degraded,
            })
            .collect();
        let policy = TuningPolicy {
            n_configs: adapt_cfg.policy.n_configs,
            trials_per_config: adapt_cfg.policy.trials_per_config,
        };
        let (abstract_outcome, abstract_decisions) = run_tuning_stream(&stream, policy);

        let keys = |d: &[Decision]| d.iter().map(Decision::key).collect::<Vec<_>>();
        assert_eq!(
            keys(&abstract_decisions),
            keys(&out.decisions),
            "{}: abstract and concrete protocols diverged on decision keys",
            app.name()
        );
        assert_eq!(abstract_outcome.tuning_intervals, out.decisions.iter()
            .filter(|d| matches!(d.kind, dsm_adapt::DecisionKind::Trial { .. }))
            .count());

        // Degraded intervals are spectators in both implementations: no
        // decision may sit on a degraded interval's index.
        let degraded: Vec<u64> =
            out.stream.iter().filter(|o| o.degraded).map(|o| o.index).collect();
        if avail.is_some() {
            assert!(!degraded.is_empty(), "{}: availability model never fired", app.name());
        }
        for d in &out.decisions {
            assert!(
                !degraded.contains(&d.interval),
                "{}: decision spent on degraded interval {}",
                app.name(),
                d.interval
            );
        }
    }
}

/// Real reconfiguration under a lossy network: every actuator family keeps
/// the coherence conservation invariant and completes on every workload.
#[test]
fn adaptation_conserves_coherence_under_faults() {
    for app in App::EXTENDED {
        let cfg = ExperimentConfig::test(app, 8);
        let mut sys_cfg = cfg.system_config();
        sys_cfg.fault = FaultPlan::mixed(42, 0.01);
        sys_cfg.distribution = DistributionPolicy::FirstTouch;
        let core = sys_cfg.core;
        let actuators: Vec<Box<dyn dsm_adapt::Actuator>> = vec![
            Box::new(MigrationActuator),
            Box::new(DvfsActuator),
            Box::new(HeteroActuator::new(core)),
        ];
        for actuator in actuators {
            let name = actuator.name();
            let out = AdaptSession::new(
                build_system_cfg(cfg, sys_cfg.clone()),
                actuator,
                AdaptConfig::default(),
            )
            .run();
            assert!(
                out.stats.finish_cycle > 0,
                "{} 8P {name}: run did not finish under faults",
                app.name()
            );
            assert!(
                out.stats.coherence_transactions_conserved(),
                "{} 8P {name}: coherence transactions not conserved under faults",
                app.name()
            );
            assert!(out.stats.faults.drops > 0, "{} 8P: fault layer never fired", app.name());
        }
        // The faulty adapted run still differs from a fault-free capture in
        // fault counters only when the actuator was inert — sanity-pin that
        // the fault plan itself perturbs the run.
        let clean = capture_with_faults(cfg, FaultPlan::none());
        assert!(clean.stats.faults.is_clean());
    }
}

/// `DSMCKPT5` carries the tuning-protocol state: a checkpoint taken
/// mid-exploration round-trips through real bytes and resumes bit-exactly.
#[test]
fn dsmckpt4_mid_tuning_checkpoint_resumes_bit_exactly() {
    let app = App::Lu;
    let n = 2usize;
    let cfg = ExperimentConfig::test(app, n);

    // Straight-through reference run.
    let straight = AdaptSession::new(
        build_system(cfg, Some(DistributionPolicy::FirstTouch)),
        Box::new(MigrationActuator),
        AdaptConfig::default(),
    )
    .run();

    // Split run: stop at boundary 2 (inside the first phase's 4-config
    // exploration), checkpoint through the codec, rebuild, continue.
    let mut first = AdaptSession::new(
        build_system(cfg, Some(DistributionPolicy::FirstTouch)),
        Box::new(MigrationActuator),
        AdaptConfig::default(),
    );
    assert!(first.run_to_boundary(2));
    let snap = first.adapt_snap();
    assert!(!snap.phases.is_empty(), "boundary 2 must be mid-tuning");
    let mut sys_cfg = cfg.system_config();
    sys_cfg.distribution = DistributionPolicy::FirstTouch;
    let ck = Checkpoint {
        meta: CheckpointMeta {
            app,
            n_procs: n,
            scale: cfg.scale,
            interval_base: sys_cfg.interval_insns * n as u64,
            topology: sys_cfg.network.topology,
            link_contention: sys_cfg.network.link_contention,
            plan: sys_cfg.fault,
            geometry: Geometry::default(),
            interval_index: first.boundary(),
            shards: 0,
        },
        system: first.system().state_snapshot(),
        collector: first.system().observer().export_state(),
        adapt: Some(snap),
    };
    drop(first);

    // Through bytes: encode → decode is the identity, adapt section intact.
    let bytes = ck.encode();
    let decoded = Checkpoint::decode(&bytes).expect("mid-tuning checkpoint must decode");
    assert_eq!(decoded, ck);
    let adapt_snap = decoded.adapt.expect("adapt section must survive the codec");

    // Rebuild the machine exactly as `harness::simpoint` resume does:
    // fresh stream fast-forwarded by the fetched counts, collector and
    // system state restored from the checkpoint.
    let mut stream = make_stream(app, n, cfg.scale);
    for (p, &fetched) in decoded.system.fetched.iter().enumerate() {
        for _ in 0..fetched {
            let _ = stream.next(p);
        }
    }
    let dmat = Network::new(sys_cfg.network, n).distance_matrix();
    let mut collector = TraceCollector::new(n, dmat, Geometry::default());
    collector.import_state(&decoded.collector);
    let mut sys = System::new(sys_cfg, stream, collector);
    sys.restore_state(&decoded.system);

    let resumed = AdaptSession::resume(
        sys,
        Box::new(MigrationActuator),
        AdaptConfig::default(),
        &adapt_snap,
    )
    .run();

    assert_eq!(resumed.stats, straight.stats, "resumed statistics diverged");
    assert_eq!(resumed.records, straight.records, "resumed observer stream diverged");
    assert_eq!(resumed.decisions, straight.decisions, "resumed decision log diverged");
    assert_eq!(resumed.stream, straight.stream, "resumed classified stream diverged");
    assert_eq!(resumed.retunes, straight.retunes);
}
