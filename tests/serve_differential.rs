//! Server/simulator classification equivalence — the correctness anchor of
//! `dsm-serve`.
//!
//! A phase-detection service is only trustworthy if moving classification
//! out of the simulated hardware changes *nothing*: one tenant replaying a
//! workload's interval signatures through [`PhaseServer`] must produce the
//! exact `ClassifiedInterval` sequence the in-simulator [`OnlineDetector`]
//! records on the same run — phase ids, new-phase flags, CPIs, and (under
//! an [`AvailabilityModel`]) degraded flags, bit for bit. Both halves run
//! the same extracted kernel (`ClassifierBank`), so equality here pins the
//! extraction seam, the signature wire format, and the server's queueing
//! discipline all at once — for all five workloads at the paper's 16
//! processors.

use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::network::Network;

use dsm_phase::detector::{AvailabilityModel, ClassifiedInterval};
use dsm_phase::signature::SignatureExtractor;
use dsm_serve::{Ingest, PhaseServer, ServeConfig, TenantConfig};

const THR: Thresholds = Thresholds { bbv: 0.4, dds: 0.25 };

/// Run the simulation twice — online detector and signature extractor —
/// and return both results. `avail` threads the same availability model
/// through both, so the degraded verdicts face identical conditions.
fn run_both(
    app: App,
    n_procs: usize,
    avail: Option<AvailabilityModel>,
) -> (Vec<Vec<ClassifiedInterval>>, Vec<Vec<dsm_phase::IntervalSignature>>) {
    let config = ExperimentConfig::test(app, n_procs);
    let sys_cfg = config.system_config();
    let dist = Network::new(sys_cfg.network, n_procs).distance_matrix();
    let geometry = DetectorGeometry::default();

    let online = match avail {
        None => OnlineDetector::new(n_procs, dist.clone(), DetectorMode::BbvDdv, THR, geometry),
        Some(m) => OnlineDetector::with_availability(
            n_procs,
            dist.clone(),
            DetectorMode::BbvDdv,
            THR,
            geometry,
            m,
        ),
    };
    let stream = make_stream(app, n_procs, Scale::Test);
    let (_, online) = System::new(sys_cfg.clone(), stream, online).run();

    let extractor = match avail {
        None => SignatureExtractor::new(n_procs, dist, geometry),
        Some(m) => SignatureExtractor::with_availability(n_procs, dist, geometry, m),
    };
    let stream = make_stream(app, n_procs, Scale::Test);
    let (_, extractor) = System::new(sys_cfg, stream, extractor).run();

    (online.classified, extractor.signatures)
}

/// Replay one workload's signatures through a single server tenant —
/// round-robin across processors, honouring backpressure by batching —
/// and return the per-processor classification streams.
fn serve_one_tenant(
    n_procs: usize,
    signatures: &[Vec<dsm_phase::IntervalSignature>],
) -> Vec<Vec<ClassifiedInterval>> {
    // Deliberately tight queues so the differential also exercises Busy
    // retries and output stalls, not just the happy path.
    let mut srv = PhaseServer::new(ServeConfig {
        queue_capacity: 8,
        output_capacity: 16,
        batch_size: 4,
        ..ServeConfig::default()
    });
    let tenant = srv
        .admit(TenantConfig::new(n_procs, DetectorMode::BbvDdv, THR))
        .expect("admit");

    let mut out: Vec<Vec<ClassifiedInterval>> = vec![Vec::new(); n_procs];
    let drain = |srv: &mut PhaseServer, out: &mut Vec<Vec<ClassifiedInterval>>| {
        for c in srv.drain_output(tenant, usize::MAX).expect("drain") {
            out[c.proc].push(c);
        }
    };

    let mut next = vec![0usize; n_procs];
    loop {
        let mut progressed = false;
        for proc in 0..n_procs {
            if next[proc] >= signatures[proc].len() {
                continue;
            }
            match srv.offer(tenant, signatures[proc][next[proc]].clone()).expect("offer") {
                Ingest::Enqueued { .. } => {
                    next[proc] += 1;
                    progressed = true;
                }
                Ingest::Busy => {
                    srv.run_batch();
                    drain(&mut srv, &mut out);
                }
            }
        }
        if !progressed && (0..n_procs).all(|p| next[p] >= signatures[p].len()) {
            break;
        }
    }
    while srv.run_batch() > 0 {
        drain(&mut srv, &mut out);
    }
    drain(&mut srv, &mut out);

    let stats = srv.stats(tenant).expect("stats");
    assert_eq!(stats.offered, stats.accepted + stats.rejected, "conservation");
    assert_eq!(stats.classified, stats.delivered, "everything drained");
    out
}

fn check_app(app: App, avail: Option<AvailabilityModel>) {
    const N: usize = 16;
    let (online, signatures) = run_both(app, N, avail);
    assert!(
        signatures.iter().map(Vec::len).sum::<usize>() > 0,
        "{}: no intervals extracted",
        app.name()
    );
    let served = serve_one_tenant(N, &signatures);
    for proc in 0..N {
        assert_eq!(
            served[proc],
            online[proc],
            "{} proc {proc}: server classification diverged from the online detector",
            app.name()
        );
    }
}

#[test]
fn lu_16p_server_matches_online_detector() {
    check_app(App::Lu, None);
}

#[test]
fn fmm_16p_server_matches_online_detector() {
    check_app(App::Fmm, None);
}

#[test]
fn art_16p_server_matches_online_detector() {
    check_app(App::Art, None);
}

#[test]
fn equake_16p_server_matches_online_detector() {
    check_app(App::Equake, None);
}

#[test]
fn ocean_16p_server_matches_online_detector() {
    check_app(App::Ocean, None);
}

/// Degraded flags cross the wire: under a lossy availability model the
/// extractor's staleness verdicts — and the BBV-only fallback they force —
/// match the in-simulator detector exactly.
#[test]
fn degraded_flags_survive_the_wire() {
    let model = AvailabilityModel { seed: 42, miss_ppm: 300_000, max_staleness: 1 };
    for app in [App::Lu, App::Equake] {
        let (online, signatures) = run_both(app, 16, Some(model));
        let degraded_count: usize = signatures
            .iter()
            .flatten()
            .filter(|s| s.degraded)
            .count();
        assert!(
            degraded_count > 0,
            "{}: lossy model produced no degraded intervals — test is vacuous",
            app.name()
        );
        let served = serve_one_tenant(16, &signatures);
        for proc in 0..16 {
            assert_eq!(served[proc], online[proc], "{} proc {proc}", app.name());
        }
    }
}
