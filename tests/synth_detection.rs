//! Ground-truth validation on synthetic workloads: phases that differ in
//! *code* are detectable by the BBV alone; phases that differ only in
//! *data distribution* are invisible to the BBV and require the DDV —
//! the paper's central claim, checked against known labels.

use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::event::ChunkedStream;
use dsm_phase_detection::sim::network::Network;
use dsm_phase_detection::workloads::synth::{PhaseSpec, SquareWave};

const PERIOD: usize = 6;
const CHUNKS: usize = 48;

/// Jitter-free variants of the library's canned workloads, so chunks and
/// sampling intervals align exactly (each chunk = 3 000 block instructions
/// + 32 memory accesses = 3 032 non-sync instructions).
fn code_phases_exact(p: usize) -> SquareWave {
    let phases = vec![
        PhaseSpec { bbs: vec![0x100, 0x101], insns: 3000, homes: vec![0], lines_per_home: 16, jitter: 0, write: false },
        PhaseSpec { bbs: vec![0x200, 0x201], insns: 3000, homes: vec![0], lines_per_home: 16, jitter: 0, write: false },
    ];
    SquareWave::new(p, phases, PERIOD, CHUNKS, 42)
}

fn data_phases_exact(p: usize) -> SquareWave {
    let phases = vec![
        PhaseSpec { bbs: vec![0x300, 0x301], insns: 3000, homes: vec![usize::MAX], lines_per_home: 32, jitter: 0, write: false },
        PhaseSpec { bbs: vec![0x300, 0x301], insns: 3000, homes: vec![0], lines_per_home: 32, jitter: 0, write: true },
    ];
    SquareWave::new(p, phases, PERIOD, CHUNKS, 43)
}

/// Run a square-wave workload and return (ground truth per interval,
/// classified ids per interval, per-interval CPI) for processor `proc`.
fn run(
    wave: SquareWave,
    n_procs: usize,
    chunk_insns: u64,
    mode: DetectorMode,
    thr: Thresholds,
    proc: usize,
) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
    // The interval length matches one chunk exactly so intervals align
    // with the ground-truth labels.
    let mut cfg = SystemConfig::scaled(n_procs, chunk_insns * n_procs as u64);
    cfg.interval_insns = chunk_insns;

    let truth: Vec<u32> = (0..CHUNKS).map(|c| wave.truth(c)).collect();
    let net = Network::new(cfg.network, n_procs);
    let det = OnlineDetector::new(
        n_procs,
        net.distance_matrix(),
        mode,
        thr,
        DetectorGeometry::default(),
    );
    let stream = ChunkedStream::new(wave);
    let (_, det) = System::new(cfg, stream, det).run();

    let ids: Vec<u32> = det.classified[proc].iter().map(|c| c.phase_id).collect();
    let cpis: Vec<f64> = det.classified[proc].iter().map(|c| c.cpi).collect();
    let n = ids.len().min(truth.len());
    (truth[..n].to_vec(), ids[..n].to_vec(), cpis[..n].to_vec())
}

/// Agreement after optimally mapping detected ids to truth labels
/// (majority vote per detected id).
fn agreement(truth: &[u32], ids: &[u32]) -> f64 {
    use std::collections::HashMap;
    let mut votes: HashMap<u32, HashMap<u32, usize>> = HashMap::new();
    for (&t, &d) in truth.iter().zip(ids) {
        *votes.entry(d).or_default().entry(t).or_default() += 1;
    }
    let mapping: HashMap<u32, u32> = votes
        .into_iter()
        .map(|(d, m)| (d, m.into_iter().max_by_key(|(_, c)| *c).unwrap().0))
        .collect();
    let correct = truth
        .iter()
        .zip(ids)
        .filter(|(t, d)| mapping[d] == **t)
        .count();
    correct as f64 / truth.len() as f64
}

#[test]
fn bbv_detects_code_phases() {
    let wave = code_phases_exact(2);
    let (truth, ids, _) = run(wave, 2, 3016, DetectorMode::Bbv, Thresholds::bbv_only(0.5), 0);
    let acc = agreement(&truth, &ids);
    assert!(acc > 0.95, "BBV must recover code phases, agreement {acc}");
}

#[test]
fn bbv_is_blind_to_data_phases() {
    let wave = data_phases_exact(4);
    let (_, ids, cpis) = run(wave, 4, 3032, DetectorMode::Bbv, Thresholds::bbv_only(0.5), 1);
    // Identical code: the BBV should fold (almost) everything into very
    // few phases even though the CPI clearly alternates.
    let distinct: std::collections::HashSet<u32> = ids.iter().copied().collect();
    assert!(distinct.len() <= 2, "BBV sees no difference: {distinct:?}");
    let pairs: Vec<(u32, f64)> = ids.iter().copied().zip(cpis.iter().copied()).collect();
    let cov = dsm_phase_detection::analysis::cov::identifier_cov(&pairs);
    assert!(cov > 0.05, "folded phases must be CPI-heterogeneous, CoV {cov}");
}

#[test]
fn ddv_detects_data_phases_that_bbv_misses() {
    let thr = Thresholds { bbv: 0.5, dds: 0.2 };
    let (truth, ddv_ids, ddv_cpis) =
        run(data_phases_exact(4), 4, 3032, DetectorMode::BbvDdv, thr, 1);
    let (_, bbv_ids, bbv_cpis) =
        run(data_phases_exact(4), 4, 3032, DetectorMode::Bbv, Thresholds::bbv_only(0.5), 1);

    let acc = agreement(&truth, &ddv_ids);
    assert!(acc > 0.9, "BBV+DDV must recover data phases, agreement {acc}");

    let cov = |ids: &[u32], cpis: &[f64]| {
        let pairs: Vec<(u32, f64)> = ids.iter().copied().zip(cpis.iter().copied()).collect();
        dsm_phase_detection::analysis::cov::identifier_cov(&pairs)
    };
    let bbv_cov = cov(&bbv_ids, &bbv_cpis);
    let ddv_cov = cov(&ddv_ids, &ddv_cpis);
    // Contention during the shared-hot-spot phase makes CPI noisy *within*
    // the true phases, so the floor is the CoV of a perfect (ground-truth)
    // classification, not zero.
    let truth_cov = cov(&truth, &ddv_cpis);
    assert!(
        ddv_cov < bbv_cov * 0.8,
        "DDV must clearly beat BBV on data phases: {ddv_cov} vs {bbv_cov}"
    );
    assert!(
        ddv_cov <= truth_cov * 1.15,
        "DDV must approach the ground-truth floor: {ddv_cov} vs {truth_cov}"
    );
    assert!(
        truth_cov < bbv_cov * 0.8,
        "sanity: the data phases really are CPI-distinct ({truth_cov} vs {bbv_cov})"
    );
}

#[test]
fn truth_labels_are_a_square_wave() {
    let wave = SquareWave::code_phases(2, PERIOD, CHUNKS);
    for c in 0..CHUNKS {
        assert_eq!(wave.truth(c), ((c / PERIOD) % 2) as u32);
    }
}
