//! The Ocean extension workload (not in the paper): red-black multigrid
//! relaxation whose V-cycle re-homes the working set at every level. The
//! stencil code is identical across levels, so this is the strongest
//! BBV-blind / DDV-visible structure in the suite — these tests pin that
//! down.

use dsm_phase_detection::harness::experiment::ExperimentConfig;
use dsm_phase_detection::harness::sweep::{bbv_curve_with, bbv_ddv_curve_with};
use dsm_phase_detection::harness::trace::capture;
use dsm_phase_detection::prelude::*;

#[test]
fn ocean_runs_end_to_end() {
    let trace = capture(ExperimentConfig::test(App::Ocean, 8));
    assert!(trace.total_intervals() > 20);
    assert!(trace.stats.total_insns() > 100_000);
    // Coarse multigrid levels serialize onto few procs: someone waits.
    let waited: u64 = trace.stats.procs.iter().map(|p| p.sync_wait_cycles).sum();
    assert!(waited > 0);
}

#[test]
fn ocean_ddv_dominates_bbv_strongly() {
    let trace = capture(ExperimentConfig::test(App::Ocean, 8));
    let bbv = bbv_curve_with(&trace, 48);
    let ddv = bbv_ddv_curve_with(&trace, 12, 8);
    let b = bbv.cov_at_phases(15.0).unwrap();
    let d = ddv.cov_at_phases(15.0).unwrap();
    assert!(
        d < b * 0.7,
        "multigrid level structure must be DDV-visible: BBV {b:.3} vs DDV {d:.3}"
    );
}

#[test]
fn ocean_parses_and_names() {
    assert_eq!("ocean".parse::<App>().unwrap(), App::Ocean);
    assert_eq!(App::Ocean.name(), "Ocean");
    assert!(App::EXTENDED.contains(&App::Ocean));
    assert!(!App::ALL.contains(&App::Ocean), "figures stay paper-faithful");
}
