//! Shape assertions for the paper's headline results (DESIGN.md §4):
//!
//! 1. Figure 2: at a fixed phase budget, baseline BBV CoV *increases with
//!    node count* (2P well below 32P).
//! 2. Figure 4: BBV+DDV's curve lies on or below the BBV's at 32P, and the
//!    two meet when everything is one phase.
//! 3. §IV: at matched CoV, BBV+DDV needs materially fewer phases.
//!
//! Absolute values are not asserted — the substrate is a from-scratch
//! simulator — only the qualitative relations the paper reports.

use dsm_phase_detection::harness::experiment::ExperimentConfig;
use dsm_phase_detection::harness::sweep::{bbv_curve_with, bbv_ddv_curve_with};
use dsm_phase_detection::harness::trace::capture_cached;
use dsm_phase_detection::prelude::*;

fn bbv_cov_at(app: App, procs: usize, budget: f64) -> f64 {
    let trace = capture_cached(ExperimentConfig::scaled(app, procs));
    bbv_curve_with(&trace, 48)
        .cov_at_phases(budget)
        .unwrap_or(f64::INFINITY)
}

#[test]
fn premise_bbv_works_on_a_uniprocessor() {
    // The paper's starting point: "the BBV mechanism has been shown to
    // successfully characterize the behavior of sequential applications".
    // On one node there is no data-distribution signal to miss, so the BBV
    // alone must reach a small CoV with a modest phase budget — far below
    // its own 32P results.
    for app in [App::Lu, App::Art, App::Equake, App::Fmm] {
        let c1 = bbv_cov_at(app, 1, 10.0);
        let c32 = bbv_cov_at(app, 32, 10.0);
        assert!(
            c1 < 0.5 * c32,
            "{}: uniprocessor BBV ({c1:.3}) must be far better than 32P ({c32:.3})",
            app.name()
        );
    }
}

#[test]
fn figure2_shape_bbv_degrades_with_node_count() {
    // The paper's core negative result, per application.
    for app in [App::Lu, App::Art, App::Equake, App::Fmm] {
        let c2 = bbv_cov_at(app, 2, 10.0);
        let c32 = bbv_cov_at(app, 32, 10.0);
        assert!(
            c32 > 1.5 * c2,
            "{}: BBV CoV must degrade markedly from 2P ({c2:.3}) to 32P ({c32:.3})",
            app.name()
        );
    }
}

#[test]
fn figure4_shape_ddv_dominates_bbv_at_32p() {
    for app in [App::Lu, App::Art, App::Equake] {
        let trace = capture_cached(ExperimentConfig::scaled(app, 32));
        let bbv = bbv_curve_with(&trace, 48);
        let ddv = bbv_ddv_curve_with(&trace, 16, 8);
        let b = bbv.cov_at_phases(20.0).unwrap();
        let d = ddv.cov_at_phases(20.0).unwrap();
        assert!(
            d < b * 1.02,
            "{}: BBV+DDV ({d:.3}) must not lose to BBV ({b:.3}) at 32P",
            app.name()
        );
    }
    // And for at least LU and Art the improvement is large (factor ~1.5+).
    for app in [App::Lu, App::Art] {
        let trace = capture_cached(ExperimentConfig::scaled(app, 32));
        let b = bbv_curve_with(&trace, 48).cov_at_phases(20.0).unwrap();
        let d = bbv_ddv_curve_with(&trace, 16, 8).cov_at_phases(20.0).unwrap();
        assert!(
            b / d > 1.4,
            "{}: expected a large DDV gain at 32P, got BBV {b:.3} vs DDV {d:.3}",
            app.name()
        );
    }
}

#[test]
fn figure4_shape_curves_meet_at_one_phase() {
    // "When distance thresholds are high enough that the entire program
    // falls into a single phase, both detectors naturally achieve the same
    // CoV result."
    let trace = capture_cached(ExperimentConfig::scaled(App::Equake, 8));
    let bbv = bbv_curve_with(&trace, 48);
    let ddv = bbv_ddv_curve_with(&trace, 16, 8);
    let one = |c: &CovCurve| {
        c.points
            .iter()
            .filter(|p| p.phases <= 1.01)
            .map(|p| p.cov)
            .fold(f64::INFINITY, f64::min)
    };
    let (b, d) = (one(&bbv), one(&ddv));
    assert!(b.is_finite() && d.is_finite(), "both sweeps reach one phase");
    assert!((b - d).abs() < 1e-9, "single-phase CoV must agree: {b} vs {d}");
}

#[test]
fn headline_ddv_cuts_phases_at_matched_cov() {
    // §IV structure on the paper's own example app: "at a CoV value of
    // 29%, the addition of the DDV reduces the number of phases from 25 to
    // 11" (FMM, 32P). We assert a >=1.4x reduction at the BBV's achievable
    // 25-phase CoV.
    let trace = capture_cached(ExperimentConfig::scaled(App::Fmm, 32));
    let bbv = bbv_curve_with(&trace, 96);
    let ddv = bbv_ddv_curve_with(&trace, 20, 10);
    let target = bbv.cov_at_phases(25.0).unwrap();
    let bbv_phases = bbv.phases_at_cov(target).unwrap();
    let ddv_phases = ddv.phases_at_cov(target).unwrap_or(f64::INFINITY);
    assert!(
        ddv_phases * 1.4 <= bbv_phases,
        "DDV must reach CoV {target:.3} with far fewer phases: {ddv_phases} vs {bbv_phases}"
    );
}
