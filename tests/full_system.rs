//! End-to-end sanity sweep: every application at several node counts runs
//! to completion with coherent statistics.

use dsm_phase_detection::prelude::*;

#[test]
fn every_app_runs_at_every_size() {
    for app in App::ALL {
        for procs in [1usize, 2, 4, 8] {
            let trace = capture(ExperimentConfig::test(app, procs));
            let stats = &trace.stats;

            assert!(stats.total_insns() > 10_000, "{} {procs}p: too little work", app.name());
            assert!(stats.finish_cycle > 0);
            // At most commit_width instructions per cycle system-wide per proc.
            assert!(
                stats.system_ipc() <= 6.0 * procs as f64,
                "{} {procs}p: impossible IPC {}",
                app.name(),
                stats.system_ipc()
            );

            for (i, p) in stats.procs.iter().enumerate() {
                assert!(p.insns > 0, "{} {procs}p proc {i} did no work", app.name());
                assert!(p.cycles >= p.insns / 6, "cycles below commit-width bound");
                assert!(p.mem_refs > 0);
                assert!(p.l1_misses <= p.mem_refs);
                assert!(p.l2_misses <= p.l1_misses);
                assert_eq!(p.local_home_misses + p.remote_home_misses, p.l2_misses);
                let rf = p.remote_miss_fraction();
                assert!((0.0..=1.0).contains(&rf));
                if procs == 1 {
                    assert_eq!(p.remote_home_misses, 0, "uniprocessor has no remote homes");
                }
            }

            // Directory bookkeeping is consistent with traffic.
            let d = stats.directory;
            assert!(d.reads + d.writes > 0);
            assert!(d.owner_forwards <= d.reads + d.writes);

            // Memory-controller requests at least cover the L2 misses that
            // went to memory.
            let reqs: u64 = stats.memctrls.iter().map(|m| m.requests).sum();
            assert!(reqs > 0);
        }
    }
}

#[test]
fn sync_waits_only_in_parallel_runs() {
    let t1 = capture(ExperimentConfig::test(App::Equake, 1));
    // A single processor never waits at locks and barriers release
    // immediately (only the fixed sync cost applies).
    for p in &t1.stats.procs {
        assert_eq!(p.sync_wait_cycles, 0, "uniprocessor must not wait");
    }
    let t4 = capture(ExperimentConfig::test(App::Equake, 4));
    let waited: u64 = t4.stats.procs.iter().map(|p| p.sync_wait_cycles).sum();
    assert!(waited > 0, "parallel runs exhibit real barrier/lock waits");
}

#[test]
fn remote_traffic_grows_with_node_count() {
    for app in [App::Lu, App::Fmm, App::Art] {
        let frac = |procs: usize| {
            let t = capture(ExperimentConfig::test(app, procs));
            let remote: u64 = t.stats.procs.iter().map(|p| p.remote_home_misses).sum();
            let total: u64 = t.stats.procs.iter().map(|p| p.l2_misses).sum();
            remote as f64 / total.max(1) as f64
        };
        let f2 = frac(2);
        let f8 = frac(8);
        assert!(
            f8 > f2,
            "{}: remote miss share must grow with nodes ({f2:.3} -> {f8:.3})",
            app.name()
        );
    }
}

#[test]
fn network_traffic_is_consistent() {
    let t = capture(ExperimentConfig::test(App::Lu, 8));
    let net = t.stats.network;
    assert!(net.msgs > 0);
    assert!(net.payload_msgs <= net.msgs);
    assert!(net.total_hops >= net.msgs / 2, "messages traverse real distances");
}
