//! Online/offline classification equivalence (DESIGN.md §2).
//!
//! The CoV-curve sweeps classify captured traces offline; the paper's
//! hardware classifies online. These tests drive the *same deterministic
//! simulation* once with the trace collector and once with the online
//! detector and assert the phase streams agree exactly, for both detector
//! modes and several applications.

use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::network::Network;

fn check_equivalence(app: App, n_procs: usize, mode: DetectorMode, thr: Thresholds) {
    let config = ExperimentConfig::test(app, n_procs);
    let sys_cfg = config.system_config();

    // Pass 1: capture features.
    let trace = capture(config);

    // Pass 2: classify online during an identical simulation.
    let net = Network::new(sys_cfg.network, n_procs);
    let online = OnlineDetector::new(
        n_procs,
        net.distance_matrix(),
        mode,
        thr,
        DetectorGeometry::default(),
    );
    let stream = make_stream(app, n_procs, Scale::Test);
    let (_, online) = System::new(sys_cfg, stream, online).run();

    for proc in 0..n_procs {
        let offline = TraceClassifier::classify_proc(&trace.records[proc], mode, thr, 32);
        let online_ids: Vec<u32> =
            online.classified[proc].iter().map(|c| c.phase_id).collect();
        assert_eq!(
            offline, online_ids,
            "{} proc {proc}: online and offline classification must agree",
            app.name()
        );
        // CPIs observed online match the captured records.
        for (c, r) in online.classified[proc].iter().zip(&trace.records[proc]) {
            assert!((c.cpi - r.cpi()).abs() < 1e-12);
        }
    }
}

#[test]
fn bbv_mode_matches_offline() {
    for app in [App::Lu, App::Equake] {
        check_equivalence(app, 4, DetectorMode::Bbv, Thresholds::bbv_only(0.3));
    }
}

#[test]
fn bbv_ddv_mode_matches_offline() {
    for app in [App::Lu, App::Art, App::Fmm] {
        check_equivalence(
            app,
            4,
            DetectorMode::BbvDdv,
            Thresholds { bbv: 0.3, dds: 0.2 },
        );
    }
}

#[test]
fn equivalence_holds_across_thresholds() {
    for thr in [0.05, 0.5, 1.5] {
        check_equivalence(
            App::Equake,
            2,
            DetectorMode::BbvDdv,
            Thresholds { bbv: thr, dds: thr / 2.0 },
        );
    }
}
