//! Differential equivalence suite for the route-aware network fabric.
//!
//! The fabric replaced the analytical latency model on the hottest message
//! path, so its default configuration — hypercube topology, link contention
//! off (infinite bandwidth) — must be **bit-identical** to the analytical
//! model it replaced: same `SystemStats`, same per-processor interval
//! records, same DDV traffic, for every workload at 2 and 16 processors,
//! fault-free and under an active fault plan.
//!
//! The analytical model's outputs are pinned as committed goldens in
//! `tests/goldens/fabric_equivalence.json` (generated from the pre-fabric
//! build after the duplicate-hop accounting fix). This gate is permanent:
//! any change to routing order, link accounting, or latency arithmetic that
//! perturbs observable behavior fails here first.
//!
//! Regenerating (only when an *intentional* behavior change is made):
//! `REGEN_FABRIC_GOLDENS=1 cargo test --test fabric_equivalence -- --ignored`

use std::collections::BTreeMap;
use std::path::PathBuf;

use dsm_phase_detection::harness::json::{self, Json};
use dsm_phase_detection::harness::trace::capture_with_faults;
use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::FaultPlan;

/// Fixed fault seed: goldens are committed, so the faulty column must not
/// depend on the environment (CI's `FAULT_SEED` sweep does not apply here).
const GOLDEN_FAULT_SEED: u64 = 0xFAB;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/fabric_equivalence.json")
}

fn plans() -> [(&'static str, FaultPlan); 2] {
    [
        ("clean", FaultPlan::none()),
        ("faulty", FaultPlan::mixed(GOLDEN_FAULT_SEED, 0.02)),
    ]
}

fn fnv1a64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Canonical fingerprint of one captured run: the human-readable headline
/// counters plus two order-sensitive hashes covering every interval-record
/// field and every remaining `SystemStats` counter. `f64`s hash as raw bits,
/// so "identical" here means bit-identical.
fn fingerprint(trace: &SystemTrace) -> Json {
    let s = &trace.stats;
    let mut rec_hash = 0xcbf2_9ce4_8422_2325u64;
    for recs in &trace.records {
        fnv1a64(&mut rec_hash, recs.len() as u64);
        for r in recs {
            for v in [r.proc as u64, r.index, r.insns, r.cycles, r.branches] {
                fnv1a64(&mut rec_hash, v);
            }
            for &x in &r.bbv {
                fnv1a64(&mut rec_hash, x.to_bits());
            }
            for v in r.fvec.iter().chain(&r.cvec).chain(&r.ws_sig) {
                fnv1a64(&mut rec_hash, *v);
            }
            fnv1a64(&mut rec_hash, r.dds.to_bits());
        }
    }
    let mut stat_hash = 0xcbf2_9ce4_8422_2325u64;
    for p in &s.procs {
        for v in [
            p.cycles,
            p.insns,
            p.sync_ops,
            p.sync_wait_cycles,
            p.mem_refs,
            p.l1_misses,
            p.l2_misses,
            p.local_home_misses,
            p.remote_home_misses,
            p.mem_stall_cycles,
            p.contention_cycles,
            p.mispredicts,
            p.branches,
            p.intervals,
        ] {
            fnv1a64(&mut stat_hash, v);
        }
    }
    let d = &s.directory;
    for v in [d.reads, d.writes, d.owner_forwards, d.invalidations, d.upgrades, d.writebacks, d.nacks]
    {
        fnv1a64(&mut stat_hash, v);
    }
    let f = &s.faults;
    for v in [
        f.messages,
        f.drops,
        f.retries,
        f.forced_deliveries,
        f.duplicates,
        f.spikes,
        f.spike_cycles,
        f.timeout_wait_cycles,
        f.slowdown_events,
        f.slowdown_cycles,
    ] {
        fnv1a64(&mut stat_hash, v);
    }
    for m in &s.memctrls {
        fnv1a64(&mut stat_hash, m.requests);
        fnv1a64(&mut stat_hash, m.total_queue_delay);
    }
    Json::obj()
        .field("finish_cycle", s.finish_cycle)
        .field("total_insns", s.total_insns())
        .field("msgs", s.network.msgs)
        .field("payload_msgs", s.network.payload_msgs)
        .field("total_hops", s.network.total_hops)
        .field("link_wait_cycles", s.network.link_wait_cycles)
        .field("dir_reads", s.directory.reads)
        .field("dir_writes", s.directory.writes)
        .field("dir_nacks", s.directory.nacks)
        .field("drops", s.faults.drops)
        .field("duplicates", s.faults.duplicates)
        .field("ddv_vectors_exchanged", trace.ddv_vectors_exchanged)
        .field("records_hash", format!("{rec_hash:016x}"))
        .field("stats_hash", format!("{stat_hash:016x}"))
}

/// Every (workload, node count, plan) case in the matrix, with its stable
/// golden key.
fn capture_matrix() -> BTreeMap<String, Json> {
    let mut out = BTreeMap::new();
    for app in App::ALL {
        for n in [2usize, 16] {
            for (plan_name, plan) in plans() {
                let cfg = ExperimentConfig::test(app, n);
                let trace = capture_with_faults(cfg, plan);
                out.insert(format!("{}-{n}p-{plan_name}", app.name()), fingerprint(&trace));
            }
        }
    }
    out
}

fn load_goldens() -> BTreeMap<String, Json> {
    let text = std::fs::read_to_string(golden_path())
        .expect("tests/goldens/fabric_equivalence.json missing — run the regenerator");
    let root = json::parse(&text).expect("golden file parses");
    let cases = root.get("cases").and_then(Json::as_arr).expect("golden cases array");
    cases
        .iter()
        .map(|c| {
            let key = c.get("key").and_then(Json::as_str).expect("case key").to_string();
            (key, c.get("fingerprint").cloned().expect("case fingerprint"))
        })
        .collect()
}

/// The permanent gate: the fabric at its default configuration (hypercube,
/// infinite link bandwidth) reproduces the analytical model's committed
/// fingerprints for all five workloads x {2P, 16P} x {clean, faulty}.
#[test]
fn infinite_bandwidth_hypercube_matches_analytical_goldens() {
    let goldens = load_goldens();
    let live = capture_matrix();
    assert_eq!(
        goldens.keys().collect::<Vec<_>>(),
        live.keys().collect::<Vec<_>>(),
        "golden case set diverged from the capture matrix"
    );
    let mut failures = Vec::new();
    for (key, fp) in &live {
        let golden = &goldens[key];
        if golden.to_string() != fp.to_string() {
            failures.push(format!("{key}:\n  golden {golden}\n  got    {fp}"));
        }
    }
    assert!(
        failures.is_empty(),
        "fabric diverged from the analytical model on {} case(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The faulty goldens must actually exercise the fault layer, or the faulty
/// half of the gate would be vacuous.
#[test]
fn faulty_goldens_exercise_the_fault_layer() {
    let goldens = load_goldens();
    for (key, fp) in &goldens {
        let drops = fp.get("drops").and_then(Json::as_f64).unwrap_or(0.0);
        let dups = fp.get("duplicates").and_then(Json::as_f64).unwrap_or(0.0);
        if key.ends_with("-faulty") && key.contains("16p") {
            assert!(
                drops > 0.0 || dups > 0.0,
                "{key}: faulty 16P golden recorded no injected faults"
            );
        }
        if key.ends_with("-clean") {
            assert_eq!(drops, 0.0, "{key}: clean golden recorded drops");
            assert_eq!(dups, 0.0, "{key}: clean golden recorded duplicates");
        }
    }
}

/// Regenerator (ignored by default; destructive to the committed goldens).
/// Run only when an intentional observable-behavior change is made, and
/// say so in the commit that updates the file.
#[test]
#[ignore = "rewrites the committed goldens; run explicitly with REGEN_FABRIC_GOLDENS=1"]
fn regenerate_goldens() {
    if std::env::var("REGEN_FABRIC_GOLDENS").is_err() {
        panic!("set REGEN_FABRIC_GOLDENS=1 to confirm rewriting the goldens");
    }
    let cases: Vec<Json> = capture_matrix()
        .into_iter()
        .map(|(key, fp)| Json::obj().field("key", key).field("fingerprint", fp))
        .collect();
    let root = Json::obj()
        .field("schema", "dsm-fabric-goldens/v1")
        .field("fault_seed", GOLDEN_FAULT_SEED)
        .field("cases", Json::Arr(cases));
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, format!("{root}\n")).unwrap();
    eprintln!("wrote {}", path.display());
}
