//! The batched event loop (`System::run`) must be observationally
//! identical to the one-event-at-a-time reference (`System::run_unbatched`)
//! on the real workloads: same final machine statistics and the same
//! per-processor interval-record streams (BBV, DDV, contention vector and
//! DDS included), for every app in the bench matrix.

use dsm_phase_detection::phase::detector::{DetectorGeometry, TraceCollector};
use dsm_phase_detection::prelude::*;

fn collect(
    app: App,
    n_procs: usize,
    batched: bool,
) -> (dsm_phase_detection::sim::SystemStats, TraceCollector) {
    let cfg = ExperimentConfig::test(app, n_procs);
    let stream = make_stream(app, n_procs, Scale::Test);
    let collector = TraceCollector::for_hypercube(n_procs, DetectorGeometry::default());
    let system = System::new(cfg.system_config(), stream, collector);
    if batched {
        system.run()
    } else {
        system.run_unbatched()
    }
}

#[test]
fn batched_and_unbatched_runs_are_identical_on_real_workloads() {
    for app in App::ALL {
        for n in [2usize, 8] {
            let (stats_b, coll_b) = collect(app, n, true);
            let (stats_s, coll_s) = collect(app, n, false);
            assert_eq!(
                stats_b,
                stats_s,
                "{} x{n}: batched stats diverge from reference",
                app.name()
            );
            assert_eq!(
                coll_b.records,
                coll_s.records,
                "{} x{n}: batched interval records diverge from reference",
                app.name()
            );
            assert!(
                coll_b.records.iter().all(|r| !r.is_empty()),
                "{} x{n}: every processor must log intervals",
                app.name()
            );
        }
    }
}
