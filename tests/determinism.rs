//! Bit-reproducibility: every simulation, capture, and sweep must produce
//! identical results on repeated runs (DESIGN.md §8).

use dsm_phase_detection::harness::sweep::{bbv_curve_with, bbv_ddv_curve_with};
use dsm_phase_detection::prelude::*;

#[test]
fn captures_are_identical_across_runs() {
    for app in App::ALL {
        let a = capture(ExperimentConfig::test(app, 4));
        let b = capture(ExperimentConfig::test(app, 4));
        assert_eq!(a.stats, b.stats, "{} stats must be identical", app.name());
        assert_eq!(a.records, b.records, "{} records must be identical", app.name());
    }
}

#[test]
fn sweeps_are_identical_across_runs() {
    let t = capture(ExperimentConfig::test(App::Fmm, 4));
    let a = bbv_curve_with(&t, 30);
    let b = bbv_curve_with(&t, 30);
    assert_eq!(a, b);
    let a = bbv_ddv_curve_with(&t, 8, 4);
    let b = bbv_ddv_curve_with(&t, 8, 4);
    assert_eq!(a, b);
}

#[test]
fn different_sizes_produce_different_but_valid_traces() {
    let t2 = capture(ExperimentConfig::test(App::Lu, 2));
    let t8 = capture(ExperimentConfig::test(App::Lu, 8));
    assert_eq!(t2.records.len(), 2);
    assert_eq!(t8.records.len(), 8);
    // Total work is the same algorithm; instruction totals are close.
    let i2 = t2.stats.total_insns() as f64;
    let i8 = t8.stats.total_insns() as f64;
    assert!((i2 / i8 - 1.0).abs() < 0.05, "same input, same total work: {i2} vs {i8}");
}
