//! The fault-injection layer must be a *transparent* addition: with
//! [`FaultPlan::none`] the simulator draws no randomness, ticks no fault
//! counter, and produces event-for-event identical output to the pre-fault
//! build — same final machine statistics and the same per-processor
//! interval-record (observer) streams, for every app in the bench matrix.
//!
//! With faults enabled the protocol must stay *correct*: at a 1 % drop rate
//! on a 16-node machine every workload still completes, and the coherence
//! conservation invariant (`directory.reads + writes == Σ l2_misses`)
//! proves no transaction was lost to a drop or double-committed by a
//! duplicate.

use dsm_phase_detection::harness::trace::capture_with_faults;
use dsm_phase_detection::prelude::*;
use dsm_phase_detection::sim::FaultPlan;

/// Seed the faulty plans draw their fate streams from. CI's `fault-matrix`
/// job sweeps this via the `FAULT_SEED` environment variable; every
/// invariant below must hold for *any* seed.
fn seed() -> u64 {
    std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[test]
fn empty_fault_plan_is_event_for_event_identical() {
    for app in App::ALL {
        for n in [2usize, 8] {
            let cfg = ExperimentConfig::test(app, n);
            let plain = capture(cfg);
            let gated = capture_with_faults(cfg, FaultPlan::none());
            assert_eq!(
                plain.stats,
                gated.stats,
                "{} x{n}: FaultPlan::none() perturbed machine statistics",
                app.name()
            );
            assert_eq!(
                plain.records,
                gated.records,
                "{} x{n}: FaultPlan::none() perturbed the observer stream",
                app.name()
            );
            assert_eq!(
                plain.ddv_vectors_exchanged,
                gated.ddv_vectors_exchanged,
                "{} x{n}: FaultPlan::none() perturbed DDV traffic",
                app.name()
            );
            assert!(
                gated.stats.faults.is_clean(),
                "{} x{n}: no fault counter may tick under the empty plan",
                app.name()
            );
            assert_eq!(gated.stats.directory.nacks, 0);
        }
    }
}

#[test]
fn faulty_runs_are_deterministic_per_seed() {
    let s = seed();
    let cfg = ExperimentConfig::test(App::Equake, 4);
    let a = capture_with_faults(cfg, FaultPlan::mixed(s, 0.02));
    let b = capture_with_faults(cfg, FaultPlan::mixed(s, 0.02));
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.records, b.records);
    // A different seed must actually change the fate stream.
    let c = capture_with_faults(cfg, FaultPlan::mixed(s ^ 1, 0.02));
    assert_ne!(a.stats, c.stats, "seeds {s} and {} drew identical fates", s ^ 1);
}

#[test]
fn one_percent_drops_at_16_nodes_complete_and_conserve() {
    for app in App::ALL {
        let cfg = ExperimentConfig::test(app, 16);
        let trace = capture_with_faults(cfg, FaultPlan::drops(seed(), 0.01));
        let stats = &trace.stats;
        // Completion: the run terminated (no livelock) and every processor
        // kept producing intervals under faults.
        assert!(stats.finish_cycle > 0, "{}: run did not finish", app.name());
        assert!(
            trace.min_intervals() >= 1,
            "{}: a processor produced no intervals under faults",
            app.name()
        );
        // Zero lost or duplicated coherence transactions.
        assert!(
            stats.coherence_transactions_conserved(),
            "{} 16P @ 1% drops: reads {} + writes {} != Σ l2 misses {}",
            app.name(),
            stats.directory.reads,
            stats.directory.writes,
            stats.procs.iter().map(|p| p.l2_misses).sum::<u64>()
        );
        // The fault layer really fired.
        assert!(
            stats.faults.drops > 0,
            "{}: a 1% drop rate at 16 nodes must lose messages",
            app.name()
        );
        assert_eq!(
            stats.faults.drops, stats.faults.retries,
            "{}: every dropped copy must arm exactly one retry",
            app.name()
        );
    }
}

#[test]
fn duplicates_are_nacked_never_recommitted() {
    // Duplicate-heavy plan: every duplicate copy must be answered with a
    // NACK at the home and must not commit a second protocol action.
    let cfg = ExperimentConfig::test(App::Lu, 8);
    let mut plan = FaultPlan::none();
    plan.seed = seed();
    plan.duplicate_ppm = 20_000; // 2 % of copies duplicated
    let trace = capture_with_faults(cfg, plan);
    let stats = &trace.stats;
    assert!(stats.faults.duplicates > 0, "2% duplication must fire");
    // Duplicated *requests* are NACKed at the home; duplicates of other
    // message classes (invalidations, data replies) are simply discarded by
    // the receiver, so NACKs are a nonzero subset of all duplicate copies.
    assert!(stats.directory.nacks > 0, "duplicated requests must be NACKed");
    assert!(stats.directory.nacks <= stats.faults.duplicates);
    assert!(stats.coherence_transactions_conserved());
}
